//! The metric cells and the process-global registry that owns them.
//!
//! Handles are `&'static` references to leaked cells: registration happens
//! once per series (typically behind a `OnceLock` in the instrumented
//! crate) and the hot path touches only a relaxed shim atomic — no lock,
//! no lookup. The registry lock guards only registration and snapshots.

use ccc_mc::{AtomicU64, Mutex, OnceLock, Ordering};
use std::collections::BTreeMap;
use std::fmt;

/// Number of histogram buckets: upper bounds `2^0 .. 2^30` plus `+Inf`.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A monotonically increasing counter.
///
/// All updates are `Relaxed`: series are cumulative totals read by
/// whole-registry snapshots, never used for cross-thread synchronization
/// (the same contract as the cache counters in `ccc-core`).
pub struct Counter {
    cell: AtomicU64,
}

impl Counter {
    fn new() -> Counter {
        Counter {
            cell: AtomicU64::new(0),
        }
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        // ordering: Relaxed — cumulative tally, snapshot-read only.
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        // ordering: Relaxed — see `add`.
        self.cell.load(Ordering::Relaxed)
    }
}

impl fmt::Debug for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Counter").field("value", &self.get()).finish()
    }
}

/// A last-write-wins instantaneous value.
pub struct Gauge {
    cell: AtomicU64,
}

impl Gauge {
    fn new() -> Gauge {
        Gauge {
            cell: AtomicU64::new(0),
        }
    }

    /// Overwrite the value.
    pub fn set(&self, v: u64) {
        // ordering: Relaxed — last-write-wins display value.
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        // ordering: Relaxed — see `set`.
        self.cell.load(Ordering::Relaxed)
    }
}

impl fmt::Debug for Gauge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Gauge").field("value", &self.get()).finish()
    }
}

/// A fixed log₂-bucket histogram: bucket `i < 31` counts observations
/// `v ≤ 2^i`; the last bucket is `+Inf`. Fixed buckets keep `observe` a
/// handful of relaxed adds and make snapshots mergeable/diffable without
/// any bucket negotiation.
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    pub fn observe(&self, v: u64) {
        let idx = if v <= 1 {
            0
        } else {
            // ceil(log2(v)) — the smallest i with v ≤ 2^i.
            let ceil = 64 - (v - 1).leading_zeros() as usize;
            ceil.min(HISTOGRAM_BUCKETS - 1)
        };
        // ordering: Relaxed on all three cells — cumulative tallies,
        // snapshot-read only; a snapshot racing an observe may see the
        // bucket without the count (or vice versa), which `since` deltas
        // absorb by saturating.
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    fn sample(&self) -> HistogramSample {
        HistogramSample {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count.load(Ordering::Relaxed))
            .field("sum", &self.sum.load(Ordering::Relaxed))
            .finish()
    }
}

/// What kind of metric a series is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic total.
    Counter,
    /// Instantaneous value.
    Gauge,
    /// Log₂-bucket distribution.
    Histogram,
}

impl MetricKind {
    /// The Prometheus `# TYPE` spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

#[derive(Clone, Copy)]
enum Handle {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

impl Handle {
    fn kind(self) -> MetricKind {
        match self {
            Handle::Counter(_) => MetricKind::Counter,
            Handle::Gauge(_) => MetricKind::Gauge,
            Handle::Histogram(_) => MetricKind::Histogram,
        }
    }
}

struct Entry {
    help: &'static str,
    stable: bool,
    handle: Handle,
}

/// A registry of named metric series.
///
/// [`MetricsRegistry::global`] is the process-wide instance every
/// instrumented crate registers into; fresh registries exist for tests.
/// Registration is idempotent: re-registering a name returns the existing
/// cell (and panics if the kind differs — a programming error, not a
/// runtime condition).
pub struct MetricsRegistry {
    inner: Mutex<BTreeMap<String, Entry>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry {
            inner: Mutex::new(BTreeMap::new()),
        }
    }

    /// The process-global registry.
    pub fn global() -> &'static MetricsRegistry {
        static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
        GLOBAL.get_or_init(MetricsRegistry::new)
    }

    /// Register (or look up) a stable counter.
    pub fn counter(&self, name: &str, help: &'static str) -> &'static Counter {
        self.counter_with(name, help, true)
    }

    /// Register (or look up) a volatile counter (wall-time or
    /// schedule-dependent totals).
    pub fn counter_volatile(&self, name: &str, help: &'static str) -> &'static Counter {
        self.counter_with(name, help, false)
    }

    fn counter_with(&self, name: &str, help: &'static str, stable: bool) -> &'static Counter {
        match self.register(name, help, stable, || {
            Handle::Counter(Box::leak(Box::new(Counter::new())))
        }) {
            Handle::Counter(c) => c,
            _ => panic!("metric `{name}` is already registered with a different kind"),
        }
    }

    /// Register (or look up) a stable gauge.
    pub fn gauge(&self, name: &str, help: &'static str) -> &'static Gauge {
        self.gauge_with(name, help, true)
    }

    /// Register (or look up) a volatile gauge (e.g. worker counts).
    pub fn gauge_volatile(&self, name: &str, help: &'static str) -> &'static Gauge {
        self.gauge_with(name, help, false)
    }

    fn gauge_with(&self, name: &str, help: &'static str, stable: bool) -> &'static Gauge {
        match self.register(name, help, stable, || {
            Handle::Gauge(Box::leak(Box::new(Gauge::new())))
        }) {
            Handle::Gauge(g) => g,
            _ => panic!("metric `{name}` is already registered with a different kind"),
        }
    }

    /// Register (or look up) a stable histogram (simulated-clock
    /// durations, per-build work distributions).
    pub fn histogram(&self, name: &str, help: &'static str) -> &'static Histogram {
        self.histogram_with(name, help, true)
    }

    /// Register (or look up) a volatile histogram (wall-time durations).
    pub fn histogram_volatile(&self, name: &str, help: &'static str) -> &'static Histogram {
        self.histogram_with(name, help, false)
    }

    fn histogram_with(&self, name: &str, help: &'static str, stable: bool) -> &'static Histogram {
        match self.register(name, help, stable, || {
            Handle::Histogram(Box::leak(Box::new(Histogram::new())))
        }) {
            Handle::Histogram(h) => h,
            _ => panic!("metric `{name}` is already registered with a different kind"),
        }
    }

    fn register(
        &self,
        name: &str,
        help: &'static str,
        stable: bool,
        make: impl FnOnce() -> Handle,
    ) -> Handle {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        if let Some(entry) = inner.get(name) {
            return entry.handle;
        }
        let handle = make();
        inner.insert(
            name.to_string(),
            Entry {
                help,
                stable,
                handle,
            },
        );
        handle
    }

    /// A point-in-time copy of every registered series, sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        Snapshot {
            entries: inner
                .iter()
                .map(|(name, entry)| MetricSample {
                    name: name.clone(),
                    help: entry.help,
                    kind: entry.handle.kind(),
                    stable: entry.stable,
                    value: match entry.handle {
                        Handle::Counter(c) => SampleValue::Counter(c.get()),
                        Handle::Gauge(g) => SampleValue::Gauge(g.get()),
                        Handle::Histogram(h) => SampleValue::Histogram(h.sample()),
                    },
                })
                .collect(),
        }
    }
}

impl Default for MetricsRegistry {
    fn default() -> MetricsRegistry {
        MetricsRegistry::new()
    }
}

impl fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let len = self.inner.lock().map(|m| m.len()).unwrap_or(0);
        f.debug_struct("MetricsRegistry")
            .field("series", &len)
            .finish()
    }
}

/// Point-in-time histogram state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSample {
    /// Per-bucket (non-cumulative) observation counts, index-aligned with
    /// the fixed log₂ bounds.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
}

/// One series in a [`Snapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricSample {
    /// Full series name, labels included.
    pub name: String,
    /// Help text.
    pub help: &'static str,
    /// Counter / gauge / histogram.
    pub kind: MetricKind,
    /// Deterministic for a fixed workload (see crate docs).
    pub stable: bool,
    /// The sampled value.
    pub value: SampleValue,
}

/// The value part of a [`MetricSample`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SampleValue {
    /// Counter total.
    Counter(u64),
    /// Gauge value.
    Gauge(u64),
    /// Histogram state.
    Histogram(HistogramSample),
}

/// A sorted point-in-time copy of a registry.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Samples sorted by series name.
    pub entries: Vec<MetricSample>,
}

impl Snapshot {
    /// Look up a series by full name.
    pub fn get(&self, name: &str) -> Option<&MetricSample> {
        self.entries.iter().find(|m| m.name == name)
    }

    /// Counter value by name (0 when absent or not a counter).
    pub fn counter(&self, name: &str) -> u64 {
        match self.get(name).map(|m| &m.value) {
            Some(SampleValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Only the series registered as stable (deterministic for a fixed
    /// workload) — what golden snapshots and the determinism CI job
    /// compare.
    pub fn stable_only(&self) -> Snapshot {
        Snapshot {
            entries: self.entries.iter().filter(|m| m.stable).cloned().collect(),
        }
    }

    /// Delta since an earlier snapshot.
    ///
    /// All subtraction saturates: diffing against a *fresher* baseline
    /// (snapshots taken out of order, or a series reset between them)
    /// clamps to zero instead of wrapping — the same contract as
    /// `CacheStats::since` / `VerifyRouteStats::since`. Gauges keep the
    /// later value (a delta of an instantaneous reading is meaningless);
    /// series absent from `earlier` are passed through whole.
    pub fn since(&self, earlier: &Snapshot) -> Snapshot {
        Snapshot {
            entries: self
                .entries
                .iter()
                .map(|m| {
                    let mut out = m.clone();
                    if let Some(prev) = earlier.get(&m.name) {
                        out.value = match (&m.value, &prev.value) {
                            (SampleValue::Counter(now), SampleValue::Counter(then)) => {
                                SampleValue::Counter(now.saturating_sub(*then))
                            }
                            (SampleValue::Histogram(now), SampleValue::Histogram(then)) => {
                                SampleValue::Histogram(HistogramSample {
                                    buckets: now
                                        .buckets
                                        .iter()
                                        .zip(then.buckets.iter())
                                        .map(|(n, t)| n.saturating_sub(*t))
                                        .collect(),
                                    count: now.count.saturating_sub(then.count),
                                    sum: now.sum.saturating_sub(then.sum),
                                })
                            }
                            // Gauges (and kind mismatches, which cannot
                            // happen within one registry) keep the later
                            // reading.
                            _ => m.value.clone(),
                        };
                    }
                    out
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_and_kind_checked() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("t_total", "help");
        let b = reg.counter("t_total", "help");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert!(std::ptr::eq(a, b));
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("h", "help");
        for v in [0, 1, 2, 3, 4, 1024, u64::MAX] {
            h.observe(v);
        }
        let snap = reg.snapshot();
        let Some(MetricSample {
            value: SampleValue::Histogram(s),
            ..
        }) = snap.get("h")
        else {
            panic!("histogram sample missing");
        };
        assert_eq!(s.buckets[0], 2); // 0, 1 ≤ 2^0
        assert_eq!(s.buckets[1], 1); // 2 ≤ 2^1
        assert_eq!(s.buckets[2], 2); // 3, 4 ≤ 2^2
        assert_eq!(s.buckets[10], 1); // 1024 ≤ 2^10
        assert_eq!(s.buckets[HISTOGRAM_BUCKETS - 1], 1); // +Inf
        assert_eq!(s.count, 7);
    }

    /// The satellite-3 ordering case: an older snapshot diffed against a
    /// fresher baseline must clamp to zero, not wrap.
    #[test]
    fn since_saturates_when_baseline_is_fresher() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("c_total", "help");
        let h = reg.histogram("h_ms", "help");
        c.add(5);
        h.observe(100);
        let older = reg.snapshot();
        c.add(5);
        h.observe(100);
        let fresher = reg.snapshot();
        let delta = older.since(&fresher);
        assert_eq!(delta.counter("c_total"), 0);
        let Some(MetricSample {
            value: SampleValue::Histogram(s),
            ..
        }) = delta.get("h_ms")
        else {
            panic!("histogram sample missing");
        };
        assert_eq!(s.count, 0);
        assert_eq!(s.sum, 0);
        assert!(s.buckets.iter().all(|&b| b == 0));
    }

    #[test]
    fn stable_only_filters_volatile_series() {
        let reg = MetricsRegistry::new();
        reg.counter("keep_total", "help").inc();
        reg.counter_volatile("drop_total", "help").inc();
        reg.gauge_volatile("drop_gauge", "help").set(8);
        let stable = reg.snapshot().stable_only();
        assert_eq!(stable.entries.len(), 1);
        assert_eq!(stable.entries[0].name, "keep_total");
    }
}
