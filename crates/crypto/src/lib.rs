//! From-scratch cryptographic primitives for the chain-chaos synthetic PKI.
//!
//! Provides the hash functions (SHA-256, SHA-1), HMAC, a deterministic DRBG,
//! and a real discrete-log signature scheme (Schnorr over a safe-prime
//! group). These are substrates: the paper's subject is certificate *chain
//! construction*, which needs genuine "issuer key verifies subject
//! signature" semantics — including mismatches — but not production-grade
//! performance or side-channel hardening.
//!
//! Two group presets are provided:
//! - [`schnorr::Group::simulation_256`]: a 256-bit safe-prime group used by
//!   the corpus generators so that million-certificate experiments stay fast;
//! - [`schnorr::Group::rfc3526_1536`]: the 1536-bit MODP group from RFC 3526
//!   for interop-grade strength in examples.

pub mod batch;
pub mod drbg;
pub mod hmac;
pub mod intern;
pub mod schnorr;
pub mod sha1;
pub mod sha256;

pub use batch::{verify_batch, BatchItem, BatchOutcome};
pub use drbg::Drbg;
pub use hmac::hmac_sha256;
pub use intern::{
    set_verify_batch_policy, set_verify_table_policy, verify_batch_policy, verify_route_stats,
    verify_table_policy, BatchPolicy, InternedKey, KeyRegistry, TablePolicy, VerifyRouteStats,
    PROMOTION_THRESHOLD,
};
pub use schnorr::{
    keypair_derivations, Group, GroupOps, KeyPair, PrivateKey, PublicKey, Signature, VerifyRoute,
};
pub use sha1::sha1;
pub use sha256::sha256;
