//! Process-wide interned issuer keys and verify-route accounting.
//!
//! A Web PKI corpus has *few* CA keys signing *many* certificates, so the
//! issuer side of Schnorr verification (`y^(q-e)`) is the same handful of
//! bases exponentiated over and over — the exact skew fixed-base windowing
//! exploits. This module turns that observation into shared state:
//!
//! - [`KeyRegistry`]: a fingerprint-keyed, lock-striped intern table
//!   (mirroring the `IssuanceChecker` shard pattern) mapping
//!   `(group, y)` to one [`InternedKey`] per process. Every parsed
//!   certificate carrying the same CA key shares one entry, so the
//!   Montgomery residue of `y` — and, once promoted, its Brauer
//!   fixed-base table — is computed once per process instead of once per
//!   `PublicKey` clone.
//! - [`InternedKey`]: the shared per-key state — the Montgomery residue,
//!   a verification counter driving table promotion, the lazily-built
//!   [`FixedBaseTable`], and the cached subgroup-membership verdict.
//! - [`VerifyRouteStats`]: process-global counters for the hot
//!   (fixed-base) and cold (Straus multi-exponentiation) verify routes,
//!   surfaced through `CacheStats` in `ccc-core` and every stats
//!   renderer downstream.
//!
//! Promotion policy: the hot route needs a per-key table
//! (`⌈q_bits/4⌉ · 15` residues ≈ 30 KiB at 256 bits, ≈ 1.1 MiB at 1536
//! bits), so it is only built for keys observed verifying more than
//! [`PROMOTION_THRESHOLD`] times ([`TablePolicy::Auto`]); the
//! `CCC_VERIFY_TABLES` env var (`always` | `never` | `auto`) forces the
//! choice for determinism experiments. The route never changes a verdict
//! — both routes compute the same `g^s · y^(q-e)` residue exactly — and
//! the route *split* is itself thread-invariant: the counter is a
//! per-key `fetch_add`, so exactly `min(threshold, V)` of a key's `V`
//! verifications go cold no matter how threads interleave.

use crate::schnorr::{Group, GroupId, WIDE_WINDOW};
use crate::sha256::Sha256;
use ccc_bignum::{FixedBaseTable, MontElem, MontgomeryCtx};
// Sync primitives come from the ccc-mc shim layer: plain std re-exports
// in normal builds, scheduler-instrumented under `--features model-check`
// (see crates/mc and tests/model_concurrency.rs). ci/check_raw_sync.sh
// keeps raw std::sync out of this file.
use ccc_mc::{AtomicU64, Mutex, OnceLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

/// Auto-policy promotion threshold: a key's first `PROMOTION_THRESHOLD`
/// verifications take the cold route; from the next one on, the per-key
/// fixed-base table is built and every later verification under that key
/// is two table lookups and a multiplication.
pub const PROMOTION_THRESHOLD: u64 = 3;

/// Batched-verification promotion threshold: after this many *batched*
/// checks under one key, `verify_batch` upgrades the key's `y^(q−e)`
/// half from the 4-bit table to a wide 8-bit one ([`InternedKey::
/// wide_table`]), halving its lookups the same way the shared wide
/// generator table halves `g^s`. The wide build is ~16× the narrow one
/// (~260 KiB at 256 bits, ~9.4 MiB at 1536), so only keys that batching
/// hits persistently — CA keys in a corpus sweep — ever pay it.
pub const WIDE_PROMOTION_THRESHOLD: u64 = 32;

/// When to build per-key fixed-base tables for the verify hot path.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TablePolicy {
    /// Promote a key after [`PROMOTION_THRESHOLD`] verifications (the
    /// default).
    Auto,
    /// Build the table on a key's first verification (all-hot).
    Always,
    /// Never build tables (all-cold; every verification is a Straus
    /// joint exponentiation).
    Never,
}

const POLICY_AUTO: u8 = 0;
const POLICY_ALWAYS: u8 = 1;
const POLICY_NEVER: u8 = 2;
const POLICY_UNSET: u8 = 3;

/// Current policy, lazily initialized from `CCC_VERIFY_TABLES`.
///
/// Stays a raw `std` atomic (allowlisted in ci/raw_sync_allowlist.txt):
/// `AtomicU8` has no ccc-mc shim, and the policy is configuration read
/// before workloads start, not cache state worth model checking.
static POLICY: AtomicU8 = AtomicU8::new(POLICY_UNSET);

/// The active table policy: the last [`set_verify_table_policy`] value,
/// else `CCC_VERIFY_TABLES` (`always` | `never` | anything-else = auto),
/// else [`TablePolicy::Auto`].
pub fn verify_table_policy() -> TablePolicy {
    // ordering: Relaxed — POLICY is a standalone configuration byte; no
    // other memory is published through it, so no acquire/release pairing
    // is needed (the CAS below only arbitrates the first-write race).
    let raw = match POLICY.load(Ordering::Relaxed) {
        POLICY_UNSET => {
            let parsed = match std::env::var("CCC_VERIFY_TABLES").as_deref() {
                Ok("always") => POLICY_ALWAYS,
                Ok("never") => POLICY_NEVER,
                _ => POLICY_AUTO,
            };
            // A concurrent set_verify_table_policy wins over the env read.
            // ordering: Relaxed/Relaxed — the CAS guards only this one
            // byte; losing the race and re-reading is the intended path.
            let _ = POLICY.compare_exchange(
                POLICY_UNSET,
                parsed,
                Ordering::Relaxed,
                Ordering::Relaxed,
            );
            POLICY.load(Ordering::Relaxed)
        }
        raw => raw,
    };
    match raw {
        POLICY_ALWAYS => TablePolicy::Always,
        POLICY_NEVER => TablePolicy::Never,
        _ => TablePolicy::Auto,
    }
}

/// Override the table policy for this process (benches and in-process
/// A/B comparisons; normal callers configure `CCC_VERIFY_TABLES`).
pub fn set_verify_table_policy(policy: TablePolicy) {
    let raw = match policy {
        TablePolicy::Auto => POLICY_AUTO,
        TablePolicy::Always => POLICY_ALWAYS,
        TablePolicy::Never => POLICY_NEVER,
    };
    // ordering: Relaxed — single-byte flag, no dependent data (see load).
    POLICY.store(raw, Ordering::Relaxed);
}

/// When batched verification (`ccc_crypto::verify_batch`, and the
/// deferred prefetch built on it in `ccc-core`) is active.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BatchPolicy {
    /// Batch whenever a caller hands over checks; batches below the
    /// aggregate threshold skip the aggregate self-check, whose
    /// Pippenger pass cannot amortize there (the default).
    Auto,
    /// Batch always, running the aggregate self-check even for
    /// single-item batches (maximal exercise of the batch machinery).
    On,
    /// Never batch: `verify_batch` degenerates to a per-signature
    /// `verify` loop and the deferred prefetch disables itself, so
    /// batching can be bisected out of any regression.
    Off,
}

const BATCH_AUTO: u8 = 0;
const BATCH_ON: u8 = 1;
const BATCH_OFF: u8 = 2;
const BATCH_UNSET: u8 = 3;

/// Current batch policy, lazily initialized from `CCC_VERIFY_BATCH`.
///
/// Same raw-`std` justification as [`POLICY`] above (the allowlist entry
/// covers this file): configuration read once before workloads start.
static BATCH_POLICY: AtomicU8 = AtomicU8::new(BATCH_UNSET);

/// The active batch policy: the last [`set_verify_batch_policy`] value,
/// else `CCC_VERIFY_BATCH` (`on` | `off` | anything-else = auto), else
/// [`BatchPolicy::Auto`].
pub fn verify_batch_policy() -> BatchPolicy {
    // ordering: Relaxed — standalone configuration byte, exactly like
    // POLICY above; the CAS only arbitrates the first-write race.
    let raw = match BATCH_POLICY.load(Ordering::Relaxed) {
        BATCH_UNSET => {
            let parsed = match std::env::var("CCC_VERIFY_BATCH").as_deref() {
                Ok("on") => BATCH_ON,
                Ok("off") => BATCH_OFF,
                _ => BATCH_AUTO,
            };
            // ordering: Relaxed/Relaxed — guards only this byte; losing
            // the race and re-reading is the intended path.
            let _ = BATCH_POLICY.compare_exchange(
                BATCH_UNSET,
                parsed,
                Ordering::Relaxed,
                Ordering::Relaxed,
            );
            BATCH_POLICY.load(Ordering::Relaxed)
        }
        raw => raw,
    };
    match raw {
        BATCH_ON => BatchPolicy::On,
        BATCH_OFF => BatchPolicy::Off,
        _ => BatchPolicy::Auto,
    }
}

/// Override the batch policy for this process (benches and in-process
/// A/B comparisons; normal callers configure `CCC_VERIFY_BATCH`).
pub fn set_verify_batch_policy(policy: BatchPolicy) {
    let raw = match policy {
        BatchPolicy::Auto => BATCH_AUTO,
        BatchPolicy::On => BATCH_ON,
        BatchPolicy::Off => BATCH_OFF,
    };
    // ordering: Relaxed — single-byte flag, no dependent data (see load).
    BATCH_POLICY.store(raw, Ordering::Relaxed);
}

/// The `ccc-obs` registry cells behind the verify-route counters. The
/// registry series *are* the counters (replacing the five bespoke statics
/// earlier PRs kept here); [`verify_route_stats`] reads them back, so the
/// `.since()` delta plumbing and every downstream stdout render are
/// byte-identical. Registered volatile: the hot/cold split and batch
/// flush timing depend on thread scheduling (promotion races), unlike the
/// builder's per-build counts.
struct RouteMetrics {
    fixed_base_hits: &'static ccc_obs::Counter,
    cold_multiexps: &'static ccc_obs::Counter,
    tables_built: &'static ccc_obs::Counter,
    batched_verifies: &'static ccc_obs::Counter,
    batch_flushes: &'static ccc_obs::Counter,
}

fn route_metrics() -> &'static RouteMetrics {
    static METRICS: OnceLock<RouteMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = ccc_obs::MetricsRegistry::global();
        RouteMetrics {
            fixed_base_hits: reg.counter_volatile(
                "ccc_verify_fixed_base_hits_total",
                "Verifications routed through a per-key fixed-base table.",
            ),
            cold_multiexps: reg.counter_volatile(
                "ccc_verify_cold_multiexps_total",
                "Verifications routed through the cold Straus multi-exponentiation.",
            ),
            tables_built: reg.counter_volatile(
                "ccc_verify_tables_built_total",
                "Per-key fixed-base tables built (narrow and wide alike).",
            ),
            batched_verifies: reg.counter_volatile(
                "ccc_verify_batched_verifies_total",
                "Signature checks performed inside verify_batch.",
            ),
            batch_flushes: reg.counter_volatile(
                "ccc_verify_batch_flushes_total",
                "verify_batch invocations that actually batched.",
            ),
        }
    })
}

/// Process-wide verify-route counters (monotonic; meaningful as deltas
/// around a workload, like `keypair_derivations`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VerifyRouteStats {
    /// Verifications that took the hot route (per-key fixed-base table).
    pub fixed_base_hits: u64,
    /// Verifications that took the cold route (Straus joint multi-exp).
    pub cold_multiexps: u64,
    /// Per-key fixed-base tables built — narrow (hot route) and wide
    /// (batched route) count alike; each kind at most once per key per
    /// process.
    pub tables_built: u64,
    /// Signature checks performed inside `verify_batch` (each also
    /// recorded on its key's promotion counter, but routed through the
    /// batch arithmetic rather than the per-signature hot/cold paths).
    pub batched_verifies: u64,
    /// `verify_batch` invocations that actually batched (non-empty, and
    /// batching not forced off).
    pub batch_flushes: u64,
}

impl VerifyRouteStats {
    /// Counter delta (`self` at a later time minus `earlier`).
    pub fn since(&self, earlier: &VerifyRouteStats) -> VerifyRouteStats {
        VerifyRouteStats {
            fixed_base_hits: self.fixed_base_hits.saturating_sub(earlier.fixed_base_hits),
            cold_multiexps: self.cold_multiexps.saturating_sub(earlier.cold_multiexps),
            tables_built: self.tables_built.saturating_sub(earlier.tables_built),
            batched_verifies: self
                .batched_verifies
                .saturating_sub(earlier.batched_verifies),
            batch_flushes: self.batch_flushes.saturating_sub(earlier.batch_flushes),
        }
    }
}

/// Snapshot of the process-wide verify-route counters (read back from
/// the `ccc-obs` registry; also forces the route series to register, so
/// an exposition dump covers them even before any verification ran).
pub fn verify_route_stats() -> VerifyRouteStats {
    // Counter::get is a Relaxed load: monotonic counters read as
    // point-in-time deltas; callers tolerate (and tests account for)
    // concurrent increments, and no other memory is synchronized through
    // them.
    let m = route_metrics();
    VerifyRouteStats {
        fixed_base_hits: m.fixed_base_hits.get(),
        cold_multiexps: m.cold_multiexps.get(),
        tables_built: m.tables_built.get(),
        batched_verifies: m.batched_verifies.get(),
        batch_flushes: m.batch_flushes.get(),
    }
}

pub(crate) fn note_fixed_base_hit() {
    // Counter::add is a Relaxed fetch_add — pure monotonic count; the
    // RMW atomicity (never-lose-an-update) needs no ordering, and nothing
    // reads other state "after" observing the counter. Model-checked by
    // the route_counters_lose_no_updates property.
    route_metrics().fixed_base_hits.inc();
}

pub(crate) fn note_cold_multiexp() {
    // Relaxed add — same monotonic-counter argument as above.
    route_metrics().cold_multiexps.inc();
}

pub(crate) fn note_batched(n: u64) {
    // Relaxed add — same monotonic-counter argument as above.
    route_metrics().batched_verifies.add(n);
}

pub(crate) fn note_batch_flush() {
    // Relaxed add — same monotonic-counter argument as above.
    route_metrics().batch_flushes.inc();
}

/// Shared per-`(group, y)` verification state, interned once per process.
#[derive(Debug)]
pub struct InternedKey {
    group: GroupId,
    /// Montgomery residue of `y` under the group's context.
    y_mont: MontElem,
    /// Verifications observed under this key (drives Auto promotion).
    verifies: AtomicU64,
    /// Batched verifications observed under this key (drives wide-table
    /// promotion inside `verify_batch`).
    batched: AtomicU64,
    /// Brauer fixed-base table for `y`, built at most once (hot route).
    table: OnceLock<FixedBaseTable>,
    /// Wide (8-bit-window) fixed-base table for `y`, built at most once
    /// for keys past [`WIDE_PROMOTION_THRESHOLD`] batched checks.
    wide_table: OnceLock<FixedBaseTable>,
    /// Cached order-`q` subgroup membership verdict (`y^q == 1 mod p`).
    subgroup_member: OnceLock<bool>,
}

impl InternedKey {
    /// The group this key was interned under.
    pub fn group_id(&self) -> GroupId {
        self.group
    }

    /// The shared Montgomery residue of `y`.
    pub fn y_mont(&self) -> &MontElem {
        &self.y_mont
    }

    /// Record one verification under this key; returns the 1-based
    /// sequence number (unique per call, so the cold/hot split is
    /// interleaving-independent).
    pub fn record_verify(&self) -> u64 {
        // ordering: Relaxed — the returned ordinal needs only the RMW's
        // atomicity: each caller gets a unique 1-based sequence number,
        // which is what makes Auto promotion routing a pure function of
        // the per-key ordinal (model-checked by
        // promotion_ordinals_are_unique_and_route_invariantly). No other
        // memory is published through the counter.
        self.verifies.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Verifications recorded so far.
    pub fn verify_count(&self) -> u64 {
        // ordering: Relaxed — advisory read of a monotonic counter.
        self.verifies.load(Ordering::Relaxed)
    }

    /// Record one *batched* verification under this key; returns the
    /// 1-based sequence number, which decides wide-table promotion the
    /// same schedule-independent way [`record_verify`](Self::record_verify)
    /// decides hot/cold routing.
    pub fn record_batched(&self) -> u64 {
        // ordering: Relaxed — same unique-ordinal argument as
        // record_verify: only the RMW's atomicity matters, no other
        // memory is published through the counter.
        self.batched.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Whether the hot-route table has been built.
    pub fn has_table(&self) -> bool {
        self.table.get().is_some()
    }

    /// Whether the wide batched-route table has been built.
    pub fn has_wide_table(&self) -> bool {
        self.wide_table.get().is_some()
    }

    /// The per-key fixed-base table, built on first use (counted in
    /// [`VerifyRouteStats::tables_built`]; concurrent callers coalesce on
    /// the `OnceLock`, so it is built at most once per process).
    pub fn table(&self, ctx: &MontgomeryCtx, max_exp_bits: usize) -> &FixedBaseTable {
        self.table.get_or_init(|| {
            // Relaxed add — counts initializer executions; the OnceLock's
            // own synchronization publishes the table itself
            // (exactly-once is model-checked by
            // table_promotion_builds_exactly_once).
            route_metrics().tables_built.inc();
            FixedBaseTable::from_mont(ctx, &self.y_mont, max_exp_bits)
        })
    }

    /// The wide (8-bit-window) per-key table for heavily-batched keys,
    /// built on first use (also counted in
    /// [`VerifyRouteStats::tables_built`]; concurrent callers coalesce
    /// on the `OnceLock`). Callers gate on
    /// [`WIDE_PROMOTION_THRESHOLD`]; this method itself always builds.
    pub fn wide_table(&self, ctx: &MontgomeryCtx, max_exp_bits: usize) -> &FixedBaseTable {
        self.wide_table.get_or_init(|| {
            // Relaxed add — counts initializer executions, exactly like
            // the narrow table() above.
            route_metrics().tables_built.inc();
            FixedBaseTable::from_mont_with_window(ctx, &self.y_mont, max_exp_bits, WIDE_WINDOW)
        })
    }

    /// Lazily-checked membership in the order-`q` subgroup: `y^q ≡ 1
    /// (mod p)`. Cached per interned key, so corpus passes pay one extra
    /// exponentiation per *unique* CA key, not per certificate. Uses the
    /// promoted table when one exists.
    pub fn is_subgroup_member(&self) -> bool {
        *self.subgroup_member.get_or_init(|| {
            let group = Group::by_id(self.group);
            let ops = group.ops();
            let yq = match self.table.get() {
                Some(table) => table.pow_mont(&ops.ctx, &group.q),
                None => ops.ctx.pow_mont(&self.y_mont, &group.q),
            };
            yq == ops.ctx.one()
        })
    }
}

/// Shard count for the intern table (power of two; key counts are small —
/// a corpus has tens of CA keys — so this is about uncontended interning
/// from parallel workers, not capacity).
const REGISTRY_SHARDS: usize = 16;

/// One lock stripe of the registry.
type RegistryShard = Mutex<HashMap<[u8; 32], Arc<InternedKey>>>;

/// Fingerprint-keyed, lock-striped intern table for issuer keys.
///
/// Keys are `SHA-256(group tag ‖ y bytes)`, sharded by fingerprint bits
/// exactly like the `IssuanceChecker` signature cache. The registry is a
/// process-global singleton ([`KeyRegistry::global`]): interning is how
/// distinct `PublicKey`/`Certificate` instances carrying the same CA key
/// converge on one Montgomery residue and one fixed-base table across
/// every pass, thread, and analysis engine.
#[derive(Debug)]
pub struct KeyRegistry {
    shards: Vec<RegistryShard>,
    /// `shards.len() - 1`; shard count is a power of two.
    mask: u64,
}

impl Default for KeyRegistry {
    fn default() -> KeyRegistry {
        KeyRegistry::new()
    }
}

impl KeyRegistry {
    /// A fresh, empty registry (tests; production code shares
    /// [`global`](Self::global)).
    pub fn new() -> KeyRegistry {
        KeyRegistry {
            // Mutex::new (not ::default) so the lock class the model
            // checker reports is this construction site.
            shards: (0..REGISTRY_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            mask: (REGISTRY_SHARDS - 1) as u64,
        }
    }

    /// The process-wide registry.
    pub fn global() -> &'static KeyRegistry {
        static REGISTRY: OnceLock<KeyRegistry> = OnceLock::new();
        REGISTRY.get_or_init(KeyRegistry::new)
    }

    /// Intern `(group, y_bytes)`: return the shared entry, creating it —
    /// Montgomery residue included — on first sight of this key.
    ///
    /// `y_bytes` must be the fixed-width big-endian serialization of a
    /// `y` already validated to lie in `[2, p)` (the `PublicKey`
    /// constructors guarantee this).
    pub fn intern(&self, group: &Group, y_bytes: &[u8]) -> Arc<InternedKey> {
        let fp = fingerprint(group.id, y_bytes);
        let idx = u64::from_le_bytes(fp[..8].try_into().expect("32-byte fingerprint")) & self.mask;
        let mut map = self.shards[idx as usize]
            .lock()
            .expect("registry shard poisoned");
        // The residue conversion is two Montgomery multiplications —
        // cheap enough to run under the shard lock, which keeps the
        // entry unique without an in-flight coalescing slot.
        Arc::clone(map.entry(fp).or_insert_with(|| {
            let ops = group.ops();
            Arc::new(InternedKey {
                group: group.id,
                y_mont: ops
                    .ctx
                    .to_montgomery(&ccc_bignum::Uint::from_bytes_be(y_bytes)),
                verifies: AtomicU64::new(0),
                batched: AtomicU64::new(0),
                table: OnceLock::new(),
                wide_table: OnceLock::new(),
                subgroup_member: OnceLock::new(),
            })
        }))
    }

    /// Number of interned keys.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("registry shard poisoned").len())
            .sum()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// `SHA-256(group tag ‖ y bytes)` — the intern key.
fn fingerprint(group: GroupId, y_bytes: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(&[match group {
        GroupId::Sim256 => 1,
        GroupId::Rfc3526_1536 => 2,
    }]);
    h.update(y_bytes);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schnorr::KeyPair;

    #[test]
    fn interning_is_idempotent_and_shared() {
        let group = Group::simulation_256();
        let kp = KeyPair::from_seed(group, b"intern-key-a");
        let registry = KeyRegistry::new();
        let a = registry.intern(group, kp.public.as_bytes());
        let b = registry.intern(group, kp.public.as_bytes());
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(registry.len(), 1);
        let other = KeyPair::from_seed(group, b"intern-key-b");
        let c = registry.intern(group, other.public.as_bytes());
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(registry.len(), 2);
    }

    #[test]
    fn same_bytes_different_groups_do_not_collide() {
        // A 32-byte value valid in the small group is too short for the
        // 1536-bit group, so collide at the fingerprint level instead:
        // the group tag must separate the hash inputs.
        let a = fingerprint(GroupId::Sim256, &[7u8; 32]);
        let b = fingerprint(GroupId::Rfc3526_1536, &[7u8; 32]);
        assert_ne!(a, b);
    }

    #[test]
    fn verify_counter_is_per_key() {
        let group = Group::simulation_256();
        let kp = KeyPair::from_seed(group, b"intern-count");
        let registry = KeyRegistry::new();
        let entry = registry.intern(group, kp.public.as_bytes());
        assert_eq!(entry.verify_count(), 0);
        assert_eq!(entry.record_verify(), 1);
        assert_eq!(entry.record_verify(), 2);
        assert_eq!(entry.verify_count(), 2);
        // A re-intern sees the same counter.
        let again = registry.intern(group, kp.public.as_bytes());
        assert_eq!(again.verify_count(), 2);
    }

    #[test]
    fn table_builds_once_and_counts() {
        let group = Group::simulation_256();
        let kp = KeyPair::from_seed(group, b"intern-table");
        let registry = KeyRegistry::new();
        let entry = registry.intern(group, kp.public.as_bytes());
        assert!(!entry.has_table());
        let before = verify_route_stats();
        let ops = group.ops();
        let t1 = entry.table(&ops.ctx, group.q.bit_len()) as *const FixedBaseTable;
        let t2 = entry.table(&ops.ctx, group.q.bit_len()) as *const FixedBaseTable;
        assert_eq!(t1, t2);
        assert!(entry.has_table());
        // Other unit tests may build tables concurrently (the counter is
        // process-global), so assert at-least; the exact once-per-key
        // accounting is pinned in tests/promotion_policy.rs.
        let delta = verify_route_stats().since(&before);
        assert!(delta.tables_built >= 1);
    }

    #[test]
    fn route_stats_since_saturates_on_fresher_baseline() {
        // Regression: diffing an *older* snapshot against a *fresher*
        // baseline (snapshot-ordering mistake in a caller) used to wrap
        // to ~u64::MAX per counter; deltas must clamp to zero instead.
        let older = VerifyRouteStats {
            fixed_base_hits: 3,
            cold_multiexps: 1,
            tables_built: 1,
            batched_verifies: 8,
            batch_flushes: 2,
        };
        let fresher = VerifyRouteStats {
            fixed_base_hits: 10,
            cold_multiexps: 4,
            tables_built: 2,
            batched_verifies: 40,
            batch_flushes: 5,
        };
        assert_eq!(older.since(&fresher), VerifyRouteStats::default());
        // And the live path: a snapshot taken *before* work, diffed
        // against one taken after, is all zeros rather than wrapping.
        let before = verify_route_stats();
        let group = Group::simulation_256();
        let kp = KeyPair::from_seed(group, b"since-ordering");
        let registry = KeyRegistry::new();
        let entry = registry.intern(group, kp.public.as_bytes());
        let ops = group.ops();
        let _ = entry.table(&ops.ctx, group.q.bit_len());
        let after = verify_route_stats();
        let wrong_order = before.since(&after);
        assert_eq!(wrong_order, VerifyRouteStats::default());
    }

    #[test]
    fn policy_roundtrip() {
        // Exercise the setter without disturbing other tests' routes more
        // than transiently: end on the parsed-env/default state.
        set_verify_table_policy(TablePolicy::Never);
        assert_eq!(verify_table_policy(), TablePolicy::Never);
        set_verify_table_policy(TablePolicy::Always);
        assert_eq!(verify_table_policy(), TablePolicy::Always);
        set_verify_table_policy(TablePolicy::Auto);
        assert_eq!(verify_table_policy(), TablePolicy::Auto);
    }

    #[test]
    fn batch_policy_roundtrip() {
        set_verify_batch_policy(BatchPolicy::Off);
        assert_eq!(verify_batch_policy(), BatchPolicy::Off);
        set_verify_batch_policy(BatchPolicy::On);
        assert_eq!(verify_batch_policy(), BatchPolicy::On);
        set_verify_batch_policy(BatchPolicy::Auto);
        assert_eq!(verify_batch_policy(), BatchPolicy::Auto);
    }
}
