//! SHA-1 (FIPS 180-4).
//!
//! SHA-1 is cryptographically broken for collision resistance, but the Web
//! PKI still uses truncated SHA-1 digests as *identifiers* (the RFC 5280
//! method (1) Subject Key Identifier is the SHA-1 hash of the public key bit
//! string). chain-chaos uses it only for that purpose.

/// Streaming SHA-1 hasher.
#[derive(Clone, Debug)]
pub struct Sha1 {
    state: [u32; 5],
    buffer: [u8; 64],
    buffer_len: usize,
    total_len: u64,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Create a fresh hasher.
    pub fn new() -> Self {
        Sha1 {
            state: [0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476, 0xc3d2e1f0],
            buffer: [0u8; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }

    /// Absorb `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut data = data;
        if self.buffer_len > 0 {
            let take = (64 - self.buffer_len).min(data.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&data[..take]);
            self.buffer_len += take;
            data = &data[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            self.compress(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffer_len = data.len();
        }
    }

    /// Finish and return the 20-byte digest.
    pub fn finalize(mut self) -> [u8; 20] {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buffer_len != 56 {
            self.update(&[0x00]);
        }
        let mut block = self.buffer;
        block[56..64].copy_from_slice(&bit_len.to_be_bytes());
        self.compress(&block);
        let mut out = [0u8; 20];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for i in 0..16 {
            w[i] = u32::from_be_bytes([
                block[i * 4],
                block[i * 4 + 1],
                block[i * 4 + 2],
                block[i * 4 + 3],
            ]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | (!b & d), 0x5a827999u32),
                20..=39 => (b ^ c ^ d, 0x6ed9eba1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8f1bbcdc),
                _ => (b ^ c ^ d, 0xca62c1d6),
            };
            let t = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = t;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

/// One-shot SHA-1.
pub fn sha1(data: &[u8]) -> [u8; 20] {
    let mut h = Sha1::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn nist_vectors() {
        assert_eq!(hex(&sha1(b"")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
        assert_eq!(hex(&sha1(b"abc")), "a9993e364706816aba3e25717850c26c9cd0d89d");
        assert_eq!(
            hex(&sha1(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0u8..=255).cycle().take(3000).collect();
        for split in [0, 1, 64, 100, 2999] {
            let mut h = Sha1::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), sha1(&data));
        }
    }
}
