//! HMAC-SHA-256 (RFC 2104), used by the DRBG and deterministic nonce
//! derivation (RFC 6979-style) in the Schnorr signer.

use crate::sha256::Sha256;

/// Compute `HMAC-SHA-256(key, message)`.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; 32] {
    let mut key_block = [0u8; 64];
    if key.len() > 64 {
        let d = crate::sha256(key);
        key_block[..32].copy_from_slice(&d);
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; 64];
    let mut opad = [0x5cu8; 64];
    for i in 0..64 {
        ipad[i] ^= key_block[i];
        opad[i] ^= key_block[i];
    }
    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();
    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        let out = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&out),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case2() {
        let out = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&out),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case6_long_key() {
        let key = [0xaau8; 131];
        let out = hmac_sha256(&key, b"Test Using Larger Than Block-Size Key - Hash Key First");
        assert_eq!(
            hex(&out),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }
}
