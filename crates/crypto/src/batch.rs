//! Batched Schnorr verification.
//!
//! The scheme's hash variant transmits `(e, s)` and recomputes
//! `r̃ = g^s · y^(q−e) mod p`, accepting iff `SHA-256(r̃ ‖ m) == e` — the
//! commitment `r` itself never travels, so the textbook "one combined
//! exponentiation for the whole batch" shape does not apply directly:
//! each item's residue must be materialized to hash it. Batching instead
//! attacks the *arithmetic* around those residues, in two layers:
//!
//! 1. **Fast per-item candidates.** Every batched check exponentiates the
//!    same generator, so the `g^s` half runs on a process-wide 8-bit-window
//!    [`FixedBaseTable`](ccc_bignum::FixedBaseTable) (half the lookups of
//!    the 4-bit per-key tables) while the `y^(q−e)` half keeps the PR 7
//!    routing — the key's interned table when hot, Straus when cold — with
//!    hot/cold decided by the same promotion ordinal rule as
//!    [`PublicKey::verify`], so the split stays schedule-independent.
//!    Keys that batching hits persistently (past
//!    `WIDE_PROMOTION_THRESHOLD` batched checks) additionally promote to
//!    a wide 8-bit per-key table, halving the `y` lookups too.
//! 2. **An aggregate self-check.** With per-item coefficients `cᵢ` the
//!    identity `Π r̃ᵢ^{cᵢ} == g^{Σcᵢsᵢ} · Π_y y^{Σcᵢ(q−eᵢ)}` holds exactly
//!    when every candidate was computed correctly (a Bellare–Garay–Rabin
//!    small-exponents test over the *computed* residues). One Pippenger
//!    multi-exponentiation ([`multi_pow_mont`]) checks the whole batch;
//!    on mismatch, bisection recomputes the offending items through the
//!    plain square-and-multiply reference route, so verdicts are identical
//!    to per-signature verification *by construction* — the aggregate can
//!    only ever trigger extra work, never a different answer.
//!
//! The coefficients come deterministically from a SHA-256 transcript of
//! the whole batch (no RNG — thread-count bit-identity is a standing
//! invariant of this workspace). Forged signatures do **not** trip the
//! self-check: a bad `(e, s)` still yields a correctly-computed candidate
//! that simply fails its hash equation, exactly as in the scalar path.
//! Keys outside the order-`q` subgroup (parsing is deliberately
//! permissive) are excluded from the aggregate — the identity's mod-`q`
//! exponent folding assumes order `q` — and rest on their per-item
//! computation alone. See DESIGN.md §16 for the math and the threat-model
//! discussion of small-coefficient forgery.

use crate::intern::{
    self, verify_batch_policy, verify_table_policy, BatchPolicy, InternedKey, TablePolicy,
    PROMOTION_THRESHOLD, WIDE_PROMOTION_THRESHOLD,
};
use crate::schnorr::{Group, GroupId, PublicKey, Signature};
use crate::sha256::Sha256;
use ccc_bignum::{joint_pow_with_powers, multi_pow_mont, window_powers, MontElem, MontgomeryCtx, Uint};
use std::sync::Arc;

/// One batched check: verify `signature` over `message` under `key`.
pub type BatchItem<'a> = (&'a PublicKey, &'a [u8], &'a Signature);

/// The result of one [`verify_batch`] call.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Per-item verdicts, index-aligned with the input slice; always
    /// identical to calling [`PublicKey::verify`] item by item.
    pub verdicts: Vec<bool>,
    /// Indices of rejected items (`verdicts[i] == false`), ascending.
    pub invalid: Vec<usize>,
    /// Indices whose candidate residue failed the aggregate self-check
    /// and was recomputed through the reference route (ascending). Empty
    /// unless the fast arithmetic drifted — i.e. always empty outside
    /// fault-injection tests.
    pub healed: Vec<usize>,
}

/// Internal per-item state for an in-range, parseable batched check.
struct Pending<'a> {
    /// Position in the caller's item slice.
    index: usize,
    group: &'static Group,
    entry: Arc<InternedKey>,
    s: Uint,
    neg_e: Uint,
    /// The computed residue candidate `g^s · y^(q−e)`.
    candidate: MontElem,
    /// Transcript coefficient `cᵢ` (32-bit, non-zero).
    coeff: Uint,
    message: &'a [u8],
    e: &'a [u8; 32],
}

/// Verify a batch of Schnorr checks, returning per-item verdicts that are
/// always identical to per-signature [`PublicKey::verify`] calls.
///
/// Each item is recorded on its key's promotion counter exactly like a
/// scalar verification, so batching never changes hot/cold routing for
/// later checks. Under [`BatchPolicy::Off`] (`CCC_VERIFY_BATCH=off`) this
/// degenerates to a per-item `verify` loop. Mixed-group batches are
/// supported; the aggregate self-check runs per group.
pub fn verify_batch(items: &[BatchItem<'_>]) -> BatchOutcome {
    verify_batch_impl(items, &[])
}

/// Test scaffolding: [`verify_batch`] with the candidate residues at
/// `fault_indices` deliberately corrupted before the aggregate self-check
/// runs, so tests can pin that bisection localizes and heals exactly the
/// injected indices. Not part of the public API.
#[doc(hidden)]
pub fn verify_batch_with_fault(items: &[BatchItem<'_>], fault_indices: &[usize]) -> BatchOutcome {
    verify_batch_impl(items, fault_indices)
}

/// Batches below this size skip the aggregate self-check under
/// [`BatchPolicy::Auto`]: the Pippenger pass costs ~(32/window)·k bucket
/// multiplications just to fill windows, which only amortizes below the
/// per-signature hot route once a few dozen items share the per-window
/// squarings and bucket combines (measured crossover ≈ 32 on the
/// snapshot host; see BENCH_batch.json). `On` always runs the aggregate
/// so tests can exercise it at any size.
const AGGREGATE_MIN: usize = 32;

fn verify_batch_impl(items: &[BatchItem<'_>], fault: &[usize]) -> BatchOutcome {
    // Fault injection needs the aggregate to have something to localize,
    // so the test hook upgrades Auto to On (bypassing AGGREGATE_MIN);
    // an explicit Off still degrades to the scalar loop, which the
    // policy tests pin.
    let policy = match verify_batch_policy() {
        BatchPolicy::Auto if !fault.is_empty() => BatchPolicy::On,
        p => p,
    };
    if policy == BatchPolicy::Off || items.is_empty() {
        // The pre-batching behavior, verbatim: one scalar verify per item.
        let verdicts: Vec<bool> = items
            .iter()
            .map(|(key, message, signature)| key.verify(message, signature))
            .collect();
        return outcome(verdicts, Vec::new());
    }
    intern::note_batch_flush();
    intern::note_batched(items.len() as u64);

    // Wide per-key tables only pay for themselves at batch scale, so
    // only aggregate-sized flushes drive promotion: the pipeline's
    // small deferred flushes never trigger a ~16×-sized build mid-sweep,
    // but once a key's table exists every flush uses it.
    let wide_eligible = items.len() >= AGGREGATE_MIN;
    let table_policy = verify_table_policy();
    let mut verdicts = vec![false; items.len()];
    let mut pendings: Vec<Pending<'_>> = Vec::with_capacity(items.len());
    for (index, (key, message, signature)) in items.iter().enumerate() {
        let group = key.group();
        let entry = Arc::clone(key.interned());
        let n = entry.record_verify();
        let nb = entry.record_batched();
        // The scalar path's early rejections, in the same order: these
        // items stay `false` and carry no candidate (nothing to check).
        if signature.s.len() != group.scalar_len {
            continue;
        }
        let s = Uint::from_bytes_be(&signature.s);
        if s >= group.q {
            continue;
        }
        let e_scalar = Uint::from_bytes_be(&signature.e)
            .rem(&group.q)
            .expect("q is non-zero");
        let neg_e = group.q.checked_sub(&e_scalar).expect("e_scalar < q");
        let ops = group.ops();
        let hot = match table_policy {
            TablePolicy::Always => true,
            TablePolicy::Never => false,
            TablePolicy::Auto => n > PROMOTION_THRESHOLD,
        };
        let candidate = if hot {
            // Hot: wide shared generator table + the key's interned
            // table — upgraded to the wide per-key table once this key's
            // batched ordinal clears the promotion threshold (same
            // value either way; the wide table just halves the lookups).
            let gs = ops.g_wide_table(group.q.bit_len()).pow_mont(&ops.ctx, &s);
            let y_pow = if entry.has_wide_table()
                || (wide_eligible && nb > WIDE_PROMOTION_THRESHOLD)
            {
                entry
                    .wide_table(&ops.ctx, group.q.bit_len())
                    .pow_mont(&ops.ctx, &neg_e)
            } else {
                entry
                    .table(&ops.ctx, group.q.bit_len())
                    .pow_mont(&ops.ctx, &neg_e)
            };
            ops.ctx.mul(&gs, &y_pow)
        } else {
            // Cold: the scalar path's Straus joint exponentiation.
            joint_pow_with_powers(
                &ops.ctx,
                ops.g_table.first_row(),
                &s,
                &window_powers(&ops.ctx, entry.y_mont()),
                &neg_e,
            )
        };
        verdicts[index] = accepts(group, &ops.ctx, &candidate, message, &signature.e);
        pendings.push(Pending {
            index,
            group,
            entry,
            s,
            neg_e,
            candidate,
            coeff: Uint::zero(),
            message,
            e: &signature.e,
        });
    }

    // Fault injection (tests only): corrupt the requested candidates so
    // the self-check below has something real to localize.
    for &fi in fault {
        if let Some(p) = pendings.iter_mut().find(|p| p.index == fi) {
            let ops = p.group.ops();
            p.candidate = ops.ctx.mul(&p.candidate, &ops.g_table.first_row()[0]);
            verdicts[p.index] = accepts(p.group, &ops.ctx, &p.candidate, p.message, p.e);
        }
    }

    // Aggregate self-check, per group, over keys the identity's mod-q
    // exponent folding is valid for (order-q subgroup members). The
    // transcript coefficients are only derived once some group actually
    // aggregates — hashing every item's message on a flush that skips
    // the aggregate (the pipeline's small deferred flushes) would cost
    // more than the flush saves.
    let mut healed = Vec::new();
    let mut coeffs_derived = false;
    for gid in [GroupId::Sim256, GroupId::Rfc3526_1536] {
        let idx: Vec<usize> = pendings
            .iter()
            .enumerate()
            .filter(|(_, p)| p.group.id == gid && p.entry.is_subgroup_member())
            .map(|(j, _)| j)
            .collect();
        // Small aggregates cost more than the candidates they guard
        // (see AGGREGATE_MIN), so Auto skips them; On keeps even a
        // singleton aggregate for coverage.
        let min_len = if policy == BatchPolicy::On {
            1
        } else {
            AGGREGATE_MIN
        };
        if idx.len() < min_len {
            continue;
        }
        if !coeffs_derived {
            // Deterministic per-item coefficients from the batch
            // transcript (a pure function of the batch contents, so the
            // laziness cannot introduce schedule dependence).
            let root = transcript_root(items);
            let coeffs = derive_coefficients(&root, items.len());
            for p in pendings.iter_mut() {
                p.coeff = Uint::from_u64(u64::from(coeffs[p.index]));
            }
            coeffs_derived = true;
        }
        if !check_indices(&pendings, &idx) {
            bisect(&mut pendings, &idx, &mut verdicts, &mut healed);
        }
    }
    healed.sort_unstable();
    outcome(verdicts, healed)
}

fn outcome(verdicts: Vec<bool>, healed: Vec<usize>) -> BatchOutcome {
    let invalid = verdicts
        .iter()
        .enumerate()
        .filter(|(_, v)| !**v)
        .map(|(i, _)| i)
        .collect();
    BatchOutcome {
        verdicts,
        invalid,
        healed,
    }
}

/// The scalar path's acceptance equation: `SHA-256(r̃ ‖ m) == e`.
fn accepts(
    group: &Group,
    ctx: &MontgomeryCtx,
    candidate: &MontElem,
    message: &[u8],
    e: &[u8; 32],
) -> bool {
    let r = ctx.from_montgomery(candidate);
    let r_bytes = match r.to_bytes_be_padded(group.element_len) {
        Some(b) => b,
        None => return false,
    };
    let mut h = Sha256::new();
    h.update(&r_bytes);
    h.update(message);
    h.finalize() == *e
}

/// SHA-256 transcript of the whole batch: domain tag, item count, then
/// each item's group tag and challenge. Coefficients derive from this
/// root, so they are a pure function of the batch contents — no RNG,
/// bit-identical on every thread schedule. The message, key, and
/// response bytes stay out of the transcript: `e = SHA-256(r ‖ m)` is
/// itself a binding digest of the commitment and message, which gives
/// the root all the per-batch variation drift detection needs, and the
/// aggregate is a self-check on our own arithmetic, not a defense
/// against chosen inputs (DESIGN.md §16) — so absorbing kilobytes of
/// TBS DER and 192-byte key material per flush would buy nothing.
fn transcript_root(items: &[BatchItem<'_>]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(b"ccc-batch-v1");
    h.update(&(items.len() as u64).to_le_bytes());
    for (key, _message, signature) in items {
        h.update(&[match key.group_id() {
            GroupId::Sim256 => 1,
            GroupId::Rfc3526_1536 => 2,
        }]);
        h.update(&signature.e);
    }
    h.finalize()
}

/// Derive the aggregate coefficients `c₀ … c_{n−1}` from the transcript
/// root in counter mode: each `SHA-256(root ‖ block)` digest yields
/// eight 32-bit coefficients, so derivation hashes ⌈n/8⌉ blocks instead
/// of one per item. Coefficients are forced non-zero so no item drops
/// out of the check. 32 bits keeps the Pippenger pass at half the
/// window count of 64-bit coefficients while still missing an
/// arithmetic drift with probability only 2⁻³² per run — this is a
/// self-check on our own computation, not a defense against adversarial
/// forgery (see the module docs and DESIGN.md §16).
fn derive_coefficients(root: &[u8; 32], n: usize) -> Vec<u32> {
    let mut out = Vec::with_capacity(n);
    for block in 0..n.div_ceil(8) {
        let mut h = Sha256::new();
        h.update(root);
        h.update(&(block as u64).to_le_bytes());
        let digest = h.finalize();
        for word in digest.chunks_exact(4).take(n - out.len()) {
            let c = u32::from_be_bytes(word.try_into().expect("4 digest bytes"));
            out.push(if c == 0 { 1 } else { c });
        }
    }
    out
}

/// Evaluate the aggregate identity over the pendings selected by `idx`
/// (all one group): `Π r̃ᵢ^{cᵢ} == g^{Σcᵢsᵢ mod q} · Π_y y^{Σcᵢ(q−eᵢ) mod q}`.
fn check_indices(pendings: &[Pending<'_>], idx: &[usize]) -> bool {
    let group = pendings[idx[0]].group;
    let ops = group.ops();
    let lhs_pairs: Vec<(&MontElem, &Uint)> = idx
        .iter()
        .map(|&j| (&pendings[j].candidate, &pendings[j].coeff))
        .collect();
    let lhs = multi_pow_mont(&ops.ctx, &lhs_pairs);

    let mut s_sum = Uint::zero();
    // Distinct keys in first-appearance order (a batch has few), each
    // with its folded exponent: (representative pending index, Σ cᵢ(q−eᵢ)).
    // The sums accumulate *unreduced* — coefficients are 32-bit, so even
    // thousands of 288-bit products stay tiny for an arbitrary-precision
    // `Uint` — and fold mod `q` once per exponent below: one Knuth-D
    // division per exponent instead of four per item.
    let mut y_terms: Vec<(usize, Uint)> = Vec::new();
    for &j in idx {
        let p = &pendings[j];
        s_sum = s_sum.add(&p.coeff.mul(&p.s));
        let term = p.coeff.mul(&p.neg_e);
        match y_terms
            .iter_mut()
            .find(|(r, _)| Arc::ptr_eq(&pendings[*r].entry, &p.entry))
        {
            Some((_, sum)) => *sum = sum.add(&term),
            None => y_terms.push((j, term)),
        }
    }
    let s_sum = s_sum.rem(&group.q).expect("q is non-zero");
    let mut rhs = ops.g_wide_table(group.q.bit_len()).pow_mont(&ops.ctx, &s_sum);
    for (r, sum) in &y_terms {
        let sum = &sum.rem(&group.q).expect("q is non-zero");
        let entry = &pendings[*r].entry;
        // Use the key's tables only if they already exist: the aggregate
        // must not trigger promotions (CCC_VERIFY_TABLES=never stays
        // table-free inside batches).
        let y_pow = if entry.has_wide_table() {
            entry
                .wide_table(&ops.ctx, group.q.bit_len())
                .pow_mont(&ops.ctx, sum)
        } else if entry.has_table() {
            entry
                .table(&ops.ctx, group.q.bit_len())
                .pow_mont(&ops.ctx, sum)
        } else {
            ops.ctx.pow_mont(entry.y_mont(), sum)
        };
        rhs = ops.ctx.mul(&rhs, &y_pow);
    }
    lhs == rhs
}

/// Localize an aggregate mismatch: split the index set, recurse into
/// failing halves, and at single-item leaves recompute the candidate via
/// the plain square-and-multiply reference route, repairing the verdict
/// if the fast arithmetic had drifted. The identity is linear, so any
/// subset that satisfies it is consistent and can be skipped; if a set
/// fails, at least one half fails.
fn bisect(
    pendings: &mut [Pending<'_>],
    idx: &[usize],
    verdicts: &mut [bool],
    healed: &mut Vec<usize>,
) {
    if let [j] = idx {
        let p = &mut pendings[*j];
        let ops = p.group.ops();
        let reference = ops.ctx.mul(
            &ops.ctx.pow_mont(&ops.g_table.first_row()[0], &p.s),
            &ops.ctx.pow_mont(p.entry.y_mont(), &p.neg_e),
        );
        if reference != p.candidate {
            p.candidate = reference;
            verdicts[p.index] = accepts(p.group, &ops.ctx, &p.candidate, p.message, p.e);
            healed.push(p.index);
        }
        return;
    }
    let (lo, hi) = idx.split_at(idx.len() / 2);
    for half in [lo, hi] {
        if !half.is_empty() && !check_indices(pendings, half) {
            bisect(pendings, half, verdicts, healed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schnorr::KeyPair;

    #[test]
    fn batch_accepts_valid_and_rejects_forged() {
        let group = Group::simulation_256();
        let ca = KeyPair::from_seed(group, b"batch-unit-ca");
        let messages: Vec<Vec<u8>> = (0..6u8).map(|i| vec![i; 40]).collect();
        let mut sigs: Vec<Signature> = messages.iter().map(|m| ca.private.sign(m)).collect();
        sigs[2].e[0] ^= 1; // forged challenge
        sigs[4].s.truncate(10); // wrong length
        let items: Vec<BatchItem<'_>> = messages
            .iter()
            .zip(&sigs)
            .map(|(m, s)| (&ca.public, m.as_slice(), s))
            .collect();
        let out = verify_batch(&items);
        assert_eq!(out.verdicts, vec![true, true, false, true, false, true]);
        assert_eq!(out.invalid, vec![2, 4]);
        assert!(out.healed.is_empty());
    }

    #[test]
    fn injected_faults_are_localized_and_healed() {
        let group = Group::simulation_256();
        let ca = KeyPair::from_seed(group, b"batch-unit-fault-ca");
        let messages: Vec<Vec<u8>> = (0..8u8).map(|i| vec![0x40 | i; 33]).collect();
        let sigs: Vec<Signature> = messages.iter().map(|m| ca.private.sign(m)).collect();
        let items: Vec<BatchItem<'_>> = messages
            .iter()
            .zip(&sigs)
            .map(|(m, s)| (&ca.public, m.as_slice(), s))
            .collect();
        let out = verify_batch_with_fault(&items, &[1, 5]);
        // Healing restores the exact per-signature verdicts.
        assert_eq!(out.verdicts, vec![true; 8]);
        assert_eq!(out.healed, vec![1, 5]);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let out = verify_batch(&[]);
        assert!(out.verdicts.is_empty());
        assert!(out.invalid.is_empty());
        assert!(out.healed.is_empty());
    }
}
