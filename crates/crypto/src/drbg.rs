//! A small deterministic random bit generator.
//!
//! HMAC-SHA-256 in counter mode: `block_i = HMAC(seed_key, counter_i)`.
//! Every random decision in chain-chaos (key generation, corpus sampling
//! seeds) flows through an explicitly seeded [`Drbg`] so experiments are
//! reproducible bit-for-bit. This is not a NIST SP 800-90A implementation;
//! it is a keyed PRG sufficient for simulation determinism.

use crate::hmac::hmac_sha256;

/// Deterministic random bit generator keyed by a seed.
#[derive(Clone, Debug)]
pub struct Drbg {
    key: [u8; 32],
    counter: u64,
    buffer: [u8; 32],
    buffer_pos: usize,
}

impl Drbg {
    /// Create a generator from an arbitrary byte seed.
    pub fn new(seed: &[u8]) -> Self {
        Drbg {
            key: crate::sha256(seed),
            counter: 0,
            buffer: [0u8; 32],
            buffer_pos: 32,
        }
    }

    /// Create a generator from a `u64` seed (convenience for experiments).
    pub fn from_u64(seed: u64) -> Self {
        Drbg::new(&seed.to_be_bytes())
    }

    /// Derive an independent child generator labelled by `label`.
    ///
    /// Children with different labels produce independent streams; the same
    /// label always yields the same child.
    pub fn fork(&self, label: &str) -> Drbg {
        let mut seed = self.key.to_vec();
        seed.extend_from_slice(label.as_bytes());
        Drbg::new(&seed)
    }

    fn refill(&mut self) {
        self.buffer = hmac_sha256(&self.key, &self.counter.to_be_bytes());
        self.counter += 1;
        self.buffer_pos = 0;
    }

    /// Fill `out` with pseudorandom bytes.
    pub fn fill_bytes(&mut self, out: &mut [u8]) {
        for b in out.iter_mut() {
            if self.buffer_pos == 32 {
                self.refill();
            }
            *b = self.buffer[self.buffer_pos];
            self.buffer_pos += 1;
        }
    }

    /// Return `n` pseudorandom bytes.
    pub fn bytes(&mut self, n: usize) -> Vec<u8> {
        let mut out = vec![0u8; n];
        self.fill_bytes(&mut out);
        out
    }

    /// Uniform `u64`.
    pub fn next_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.fill_bytes(&mut b);
        u64::from_be_bytes(b)
    }

    /// Uniform `u32`.
    pub fn next_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.fill_bytes(&mut b);
        u32::from_be_bytes(b)
    }

    /// Uniform value in `[0, bound)` (rejection sampling; `bound` > 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Rejection zone keeps the distribution exactly uniform.
        let zone = u64::MAX - u64::MAX % bound;
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli trial with probability `p` (clamped to [0, 1]).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p.clamp(0.0, 1.0)
    }

    /// Pick an index weighted by `weights` (must be non-empty; all-zero
    /// weights fall back to uniform).
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "weights must be non-empty");
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return self.below(weights.len() as u64) as usize;
        }
        let mut target = self.unit_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            target -= w;
            if target < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = Drbg::from_u64(42);
        let mut b = Drbg::from_u64(42);
        assert_eq!(a.bytes(100), b.bytes(100));
        let mut c = Drbg::from_u64(43);
        assert_ne!(a.bytes(100), c.bytes(100));
    }

    #[test]
    fn fork_independence() {
        let root = Drbg::from_u64(7);
        let mut a = root.fork("keys");
        let mut b = root.fork("corpus");
        let mut a2 = root.fork("keys");
        assert_eq!(a.bytes(32), a2.bytes(32));
        assert_ne!(a.bytes(32), b.bytes(32));
    }

    #[test]
    fn below_is_in_range() {
        let mut d = Drbg::from_u64(1);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX] {
            for _ in 0..50 {
                assert!(d.below(bound) < bound);
            }
        }
    }

    #[test]
    fn below_covers_small_range() {
        let mut d = Drbg::from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[d.below(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn weighted_index_respects_zero_weight() {
        let mut d = Drbg::from_u64(3);
        for _ in 0..200 {
            let i = d.weighted_index(&[0.0, 1.0, 0.0]);
            assert_eq!(i, 1);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut d = Drbg::from_u64(4);
        for _ in 0..50 {
            assert!(!d.chance(0.0));
            assert!(d.chance(1.0));
        }
    }

    #[test]
    fn shuffle_preserves_elements() {
        let mut d = Drbg::from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        d.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle should permute");
    }
}
