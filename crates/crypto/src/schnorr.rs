//! Schnorr signatures over a safe-prime group (classic Z_p* Schnorr).
//!
//! The scheme: public parameters are a safe prime `p = 2q + 1`, the prime
//! subgroup order `q`, and a generator `g` of the order-`q` subgroup of
//! quadratic residues. A private key is `x ∈ [1, q)`; the public key is
//! `y = g^x mod p`. A signature on message `m` is `(e, s)` where
//! `r = g^k mod p`, `e = SHA-256(r || m)`, `s = k + x·e mod q`, and the
//! nonce `k` is derived deterministically from `(x, m)` (RFC 6979 style) so
//! that signing never needs ambient randomness.
//!
//! Verification recomputes `r' = g^s · y^(−e) mod p` and accepts iff
//! `SHA-256(r' || m) == e`.

use crate::drbg::Drbg;
use crate::hmac::hmac_sha256;
use crate::sha256::Sha256;
use ccc_bignum::{FixedBaseTable, MontElem, MontgomeryCtx, Uint};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Global count of key-pair derivations (scalar sampling + `g^x`).
///
/// Deriving a key is the most expensive primitive in the stack (one
/// fixed-base exponentiation plus DRBG sampling), so callers that are
/// supposed to memoize — the corpus generator's CA key tables — assert via
/// [`keypair_derivations`] that repeated passes do not re-derive.
static KEYPAIR_DERIVATIONS: AtomicU64 = AtomicU64::new(0);

/// Process-wide number of [`KeyPair`] derivations performed so far.
///
/// Monotonic counter; meaningful as a *delta* around a workload. Used by
/// `ccc-testgen` to pin the "each CA key is derived exactly once per
/// corpus" memoization property.
pub fn keypair_derivations() -> u64 {
    KEYPAIR_DERIVATIONS.load(Ordering::Relaxed)
}

/// Identifies one of the built-in groups. Certificates record the group of
/// their key so that mixed-group universes are representable.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum GroupId {
    /// 256-bit safe-prime simulation group (fast; default for experiments).
    Sim256,
    /// RFC 3526 1536-bit MODP group (interop-grade strength).
    Rfc3526_1536,
}

/// Schnorr group parameters.
#[derive(Debug)]
pub struct Group {
    /// Which built-in group this is.
    pub id: GroupId,
    /// Safe prime modulus.
    pub p: Uint,
    /// Prime subgroup order, `q = (p - 1) / 2`.
    pub q: Uint,
    /// Generator of the order-`q` subgroup.
    pub g: Uint,
    /// Serialized length of group elements in bytes.
    pub element_len: usize,
    /// Serialized length of scalars in bytes.
    pub scalar_len: usize,
    /// Lazily-built Montgomery context + fixed-base generator tables
    /// (see [`Group::ops`]).
    ops: OnceLock<GroupOps>,
}

/// Per-group accelerated arithmetic, built once per process on first use.
///
/// `ctx` is the Montgomery context for the group prime `p`; `g_table` holds
/// the Brauer fixed-base windowing tables for the generator `g` covering
/// exponents up to `q.bit_len()` bits (every scalar in the scheme is
/// `< q`). Together they make `g^k` a squaring-free table-lookup product,
/// which is the dominant operation in keygen, signing, *and* the `g^s`
/// half of verification.
#[derive(Debug)]
pub struct GroupOps {
    /// Montgomery context for the group prime `p`.
    pub ctx: MontgomeryCtx,
    /// Fixed-base tables for the generator `g`.
    pub g_table: FixedBaseTable,
}

impl Group {
    /// The 256-bit safe-prime simulation group.
    ///
    /// Generated once with a fixed seed; `p` and `q = (p-1)/2` are verified
    /// prime by this crate's Miller–Rabin tests.
    pub fn simulation_256() -> &'static Group {
        static G: OnceLock<Group> = OnceLock::new();
        G.get_or_init(|| {
            let p = Uint::from_hex(
                "edb9229e9df73cb4f4a416fb005f7dae9ccae82ad2ba6b58e7e1c47ebc596f0b",
            )
            .expect("p is valid hex");
            let q = Uint::from_hex(
                "76dc914f4efb9e5a7a520b7d802fbed74e657415695d35ac73f0e23f5e2cb785",
            )
            .expect("q is valid hex");
            Group {
                id: GroupId::Sim256,
                p,
                q,
                g: Uint::from_u64(4),
                element_len: 32,
                scalar_len: 32,
                ops: OnceLock::new(),
            }
        })
    }

    /// The RFC 3526 1536-bit MODP group (group 5). `p ≡ 7 (mod 8)`, so 2 is
    /// a quadratic residue and generates the order-`q` subgroup.
    pub fn rfc3526_1536() -> &'static Group {
        static G: OnceLock<Group> = OnceLock::new();
        G.get_or_init(|| {
            let p = Uint::from_hex(concat!(
                "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1",
                "29024E088A67CC74020BBEA63B139B22514A08798E3404DD",
                "EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245",
                "E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED",
                "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3D",
                "C2007CB8A163BF0598DA48361C55D39A69163FA8FD24CF5F",
                "83655D23DCA3AD961C62F356208552BB9ED529077096966D",
                "670C354E4ABC9804F1746C08CA237327FFFFFFFFFFFFFFFF"
            ))
            .expect("RFC 3526 modulus is valid hex");
            let q = p.checked_sub(&Uint::one()).expect("p > 1").shr(1);
            Group {
                id: GroupId::Rfc3526_1536,
                p,
                q,
                g: Uint::from_u64(2),
                element_len: 192,
                scalar_len: 192,
                ops: OnceLock::new(),
            }
        })
    }

    /// Look up a group by id.
    pub fn by_id(id: GroupId) -> &'static Group {
        match id {
            GroupId::Sim256 => Group::simulation_256(),
            GroupId::Rfc3526_1536 => Group::rfc3526_1536(),
        }
    }

    /// The accelerated-arithmetic bundle for this group, built on first
    /// use (~30 KiB of tables for the 256-bit group, ~1.1 MiB for the
    /// 1536-bit group) and shared by every key in the group thereafter.
    pub fn ops(&self) -> &GroupOps {
        self.ops.get_or_init(|| {
            let ctx = MontgomeryCtx::new(&self.p)
                .expect("group prime is odd and > 1");
            let g_table = FixedBaseTable::new(&ctx, &self.g, self.q.bit_len());
            GroupOps { ctx, g_table }
        })
    }

    /// `g^k mod p` via the fixed-base tables (normal form).
    pub fn pow_g(&self, k: &Uint) -> Uint {
        let ops = self.ops();
        ops.g_table.pow(&ops.ctx, k)
    }

    /// `g^k mod p` in Montgomery form (for callers that keep computing).
    fn pow_g_mont(&self, k: &Uint) -> MontElem {
        let ops = self.ops();
        ops.g_table.pow_mont(&ops.ctx, k)
    }
}

/// A Schnorr private key.
#[derive(Clone, PartialEq, Eq)]
pub struct PrivateKey {
    group: GroupId,
    x: Uint,
}

impl fmt::Debug for PrivateKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print key material.
        write!(f, "PrivateKey({:?}, <redacted>)", self.group)
    }
}

/// A Schnorr public key, `y = g^x mod p`.
#[derive(Clone)]
pub struct PublicKey {
    group: GroupId,
    /// `y` serialized big-endian, padded to the group element length.
    y_bytes: Vec<u8>,
    /// Montgomery-form `y`, computed on first verification and reused for
    /// every later one (verification keys — CA keys — are verified against
    /// many times per corpus pass). Excluded from `Eq`/`Hash`: it is a pure
    /// cache of `y_bytes`.
    y_mont: OnceLock<MontElem>,
}

impl PartialEq for PublicKey {
    fn eq(&self, other: &Self) -> bool {
        self.group == other.group && self.y_bytes == other.y_bytes
    }
}

impl Eq for PublicKey {}

impl std::hash::Hash for PublicKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.group.hash(state);
        self.y_bytes.hash(state);
    }
}

impl fmt::Debug for PublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let prefix: String = self.y_bytes.iter().take(6).map(|b| format!("{b:02x}")).collect();
        write!(f, "PublicKey({:?}, {prefix}…)", self.group)
    }
}

/// A private/public key pair.
#[derive(Clone, Debug)]
pub struct KeyPair {
    /// The private half.
    pub private: PrivateKey,
    /// The public half.
    pub public: PublicKey,
}

/// A Schnorr signature `(e, s)`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Signature {
    /// Challenge hash `e = SHA-256(r || m)`.
    pub e: [u8; 32],
    /// Response scalar `s`, serialized to the group scalar length.
    pub s: Vec<u8>,
}

impl Signature {
    /// Serialize as `e || s`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + self.s.len());
        out.extend_from_slice(&self.e);
        out.extend_from_slice(&self.s);
        out
    }

    /// Parse from `e || s` given the scalar length of the signing group.
    pub fn from_bytes(bytes: &[u8], scalar_len: usize) -> Option<Signature> {
        if bytes.len() != 32 + scalar_len {
            return None;
        }
        let mut e = [0u8; 32];
        e.copy_from_slice(&bytes[..32]);
        Some(Signature {
            e,
            s: bytes[32..].to_vec(),
        })
    }
}

impl KeyPair {
    /// Generate a key pair from a DRBG stream.
    pub fn generate(group: &Group, drbg: &mut Drbg) -> KeyPair {
        KEYPAIR_DERIVATIONS.fetch_add(1, Ordering::Relaxed);
        loop {
            let candidate = Uint::from_bytes_be(&drbg.bytes(group.scalar_len));
            let x = candidate.rem(&group.q).expect("q is non-zero");
            if !x.is_zero() {
                return KeyPair::from_scalar(group, x);
            }
        }
    }

    /// Deterministically derive a key pair from a byte seed.
    pub fn from_seed(group: &Group, seed: &[u8]) -> KeyPair {
        let mut drbg = Drbg::new(seed);
        KeyPair::generate(group, &mut drbg)
    }

    fn from_scalar(group: &Group, x: Uint) -> KeyPair {
        // Fixed-base: g is exponentiated via the precomputed tables.
        let y = group.pow_g(&x);
        let y_bytes = y
            .to_bytes_be_padded(group.element_len)
            .expect("y < p fits in element_len");
        KeyPair {
            private: PrivateKey { group: group.id, x },
            public: PublicKey {
                group: group.id,
                y_bytes,
                y_mont: OnceLock::new(),
            },
        }
    }
}

impl PrivateKey {
    /// The group this key belongs to.
    pub fn group(&self) -> &'static Group {
        Group::by_id(self.group)
    }

    /// Sign `message` with a deterministic nonce.
    pub fn sign(&self, message: &[u8]) -> Signature {
        let group = self.group();
        // Deterministic nonce: k = HMAC(x, m) expanded until non-zero mod q.
        let x_bytes = self
            .x
            .to_bytes_be_padded(group.scalar_len)
            .expect("x < q fits");
        let mut k_seed = hmac_sha256(&x_bytes, message).to_vec();
        let k = loop {
            // Expand to scalar length by chained HMAC blocks.
            let mut material = Vec::with_capacity(group.scalar_len);
            let mut block = k_seed.clone();
            while material.len() < group.scalar_len {
                block = hmac_sha256(&x_bytes, &block).to_vec();
                material.extend_from_slice(&block);
            }
            material.truncate(group.scalar_len);
            let k = Uint::from_bytes_be(&material).rem(&group.q).expect("q is non-zero");
            if !k.is_zero() {
                break k;
            }
            k_seed = hmac_sha256(&x_bytes, &k_seed).to_vec();
        };
        let r = group.pow_g(&k);
        let r_bytes = r
            .to_bytes_be_padded(group.element_len)
            .expect("r < p fits the element length");
        let mut h = Sha256::new();
        h.update(&r_bytes);
        h.update(message);
        let e = h.finalize();
        let e_scalar = Uint::from_bytes_be(&e).rem(&group.q).expect("q is non-zero");
        let s = k.add_mod(&self.x.mul_mod(&e_scalar, &group.q), &group.q);
        Signature {
            e,
            s: s.to_bytes_be_padded(group.scalar_len).expect("s < q fits"),
        }
    }
}

impl PublicKey {
    /// The group this key belongs to.
    pub fn group(&self) -> &'static Group {
        Group::by_id(self.group)
    }

    /// The group id (cheap accessor for serialization).
    pub fn group_id(&self) -> GroupId {
        self.group
    }

    /// Raw serialized key material (`y`, big-endian, fixed width).
    pub fn as_bytes(&self) -> &[u8] {
        &self.y_bytes
    }

    /// Reconstruct a key from serialized material.
    ///
    /// Returns `None` when the length is wrong or `y` is not in `[2, p)`
    /// (1 and 0 are degenerate; membership in the order-q subgroup is not
    /// checked here, matching how real validators treat SPKIs).
    pub fn from_bytes(group: &Group, bytes: &[u8]) -> Option<PublicKey> {
        if bytes.len() != group.element_len {
            return None;
        }
        let y = Uint::from_bytes_be(bytes);
        if y < Uint::from_u64(2) || y >= group.p {
            return None;
        }
        Some(PublicKey {
            group: group.id,
            y_bytes: bytes.to_vec(),
            y_mont: OnceLock::new(),
        })
    }

    /// Verify `signature` over `message`.
    pub fn verify(&self, message: &[u8], signature: &Signature) -> bool {
        let group = self.group();
        if signature.s.len() != group.scalar_len {
            return false;
        }
        let s = Uint::from_bytes_be(&signature.s);
        if s >= group.q {
            return false;
        }
        let e_scalar = Uint::from_bytes_be(&signature.e)
            .rem(&group.q)
            .expect("q is non-zero");
        // r' = g^s * y^(q - e) mod p   (y has order q, so y^-e = y^(q-e)).
        // All three operations stay in Montgomery form: g^s via the fixed-
        // base tables, y^(q-e) from the cached Montgomery residue of y, and
        // the final product converts back exactly once.
        let neg_e = group.q.checked_sub(&e_scalar).expect("e_scalar < q");
        let ops = group.ops();
        let gs = group.pow_g_mont(&s);
        let y_m = self
            .y_mont
            .get_or_init(|| ops.ctx.to_montgomery(&Uint::from_bytes_be(&self.y_bytes)));
        let ye = ops.ctx.pow_mont(y_m, &neg_e);
        let r = ops.ctx.from_montgomery(&ops.ctx.mul(&gs, &ye));
        let r_bytes = match r.to_bytes_be_padded(group.element_len) {
            Some(b) => b,
            None => return false,
        };
        let mut h = Sha256::new();
        h.update(&r_bytes);
        h.update(message);
        h.finalize() == signature.e
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccc_bignum::modpow;

    #[test]
    fn sign_verify_roundtrip() {
        let group = Group::simulation_256();
        let kp = KeyPair::from_seed(group, b"test-key-1");
        let msg = b"hello, web pki";
        let sig = kp.private.sign(msg);
        assert!(kp.public.verify(msg, &sig));
    }

    #[test]
    fn wrong_message_rejected() {
        let group = Group::simulation_256();
        let kp = KeyPair::from_seed(group, b"test-key-2");
        let sig = kp.private.sign(b"message A");
        assert!(!kp.public.verify(b"message B", &sig));
    }

    #[test]
    fn wrong_key_rejected() {
        let group = Group::simulation_256();
        let kp1 = KeyPair::from_seed(group, b"key-a");
        let kp2 = KeyPair::from_seed(group, b"key-b");
        let sig = kp1.private.sign(b"msg");
        assert!(!kp2.public.verify(b"msg", &sig));
    }

    #[test]
    fn tampered_signature_rejected() {
        let group = Group::simulation_256();
        let kp = KeyPair::from_seed(group, b"key-c");
        let mut sig = kp.private.sign(b"msg");
        sig.e[0] ^= 1;
        assert!(!kp.public.verify(b"msg", &sig));
        let mut sig2 = kp.private.sign(b"msg");
        sig2.s[31] ^= 1;
        assert!(!kp.public.verify(b"msg", &sig2));
    }

    #[test]
    fn signature_is_deterministic() {
        let group = Group::simulation_256();
        let kp = KeyPair::from_seed(group, b"key-d");
        assert_eq!(kp.private.sign(b"m"), kp.private.sign(b"m"));
        assert_ne!(kp.private.sign(b"m"), kp.private.sign(b"n"));
    }

    #[test]
    fn keygen_is_deterministic_from_seed() {
        let group = Group::simulation_256();
        let a = KeyPair::from_seed(group, b"same-seed");
        let b = KeyPair::from_seed(group, b"same-seed");
        assert_eq!(a.public, b.public);
        let c = KeyPair::from_seed(group, b"other-seed");
        assert_ne!(a.public, c.public);
    }

    #[test]
    fn public_key_serialization_roundtrip() {
        let group = Group::simulation_256();
        let kp = KeyPair::from_seed(group, b"key-e");
        let bytes = kp.public.as_bytes().to_vec();
        let restored = PublicKey::from_bytes(group, &bytes).unwrap();
        assert_eq!(restored, kp.public);
        let sig = kp.private.sign(b"m");
        assert!(restored.verify(b"m", &sig));
    }

    #[test]
    fn public_key_rejects_bad_material() {
        let group = Group::simulation_256();
        assert!(PublicKey::from_bytes(group, &[0u8; 31]).is_none());
        assert!(PublicKey::from_bytes(group, &[0u8; 32]).is_none()); // y = 0
        let one = {
            let mut b = [0u8; 32];
            b[31] = 1;
            b
        };
        assert!(PublicKey::from_bytes(group, &one).is_none()); // y = 1
        assert!(PublicKey::from_bytes(group, &[0xffu8; 32]).is_none()); // y >= p
    }

    #[test]
    fn signature_serialization_roundtrip() {
        let group = Group::simulation_256();
        let kp = KeyPair::from_seed(group, b"key-f");
        let sig = kp.private.sign(b"m");
        let bytes = sig.to_bytes();
        let parsed = Signature::from_bytes(&bytes, group.scalar_len).unwrap();
        assert_eq!(parsed, sig);
        assert!(Signature::from_bytes(&bytes[..10], group.scalar_len).is_none());
    }

    #[test]
    fn rfc3526_group_works() {
        let group = Group::rfc3526_1536();
        let kp = KeyPair::from_seed(group, b"big-key");
        let sig = kp.private.sign(b"interop message");
        assert!(kp.public.verify(b"interop message", &sig));
        assert!(!kp.public.verify(b"tampered", &sig));
    }

    #[test]
    fn pow_g_matches_generic_modpow() {
        for group in [Group::simulation_256(), Group::rfc3526_1536()] {
            for e in [
                Uint::zero(),
                Uint::one(),
                Uint::from_u64(0xdead_beef_cafe_f00d),
                group.q.checked_sub(&Uint::one()).unwrap(),
            ] {
                assert_eq!(
                    group.pow_g(&e),
                    modpow(&group.g, &e, &group.p).unwrap(),
                    "{:?} e={e:?}",
                    group.id
                );
            }
        }
    }

    #[test]
    fn public_key_equality_ignores_mont_cache() {
        let group = Group::simulation_256();
        let kp = KeyPair::from_seed(group, b"cache-key");
        let fresh = PublicKey::from_bytes(group, kp.public.as_bytes()).unwrap();
        // Warm the Montgomery cache on one copy only.
        let sig = kp.private.sign(b"warm");
        assert!(kp.public.verify(b"warm", &sig));
        assert_eq!(kp.public, fresh);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |k: &PublicKey| {
            let mut s = DefaultHasher::new();
            k.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&kp.public), h(&fresh));
    }

    #[test]
    fn keypair_derivation_counter_increments() {
        let group = Group::simulation_256();
        let before = keypair_derivations();
        let _ = KeyPair::from_seed(group, b"counted-key");
        assert!(keypair_derivations() > before);
    }

    #[test]
    fn known_discrete_log_vector() {
        // Cross-check modpow against an independently computed vector.
        let group = Group::simulation_256();
        let x = Uint::from_hex("1eadbeef1eadbeef1eadbeef1eadbeef").unwrap();
        let y = modpow(&group.g, &x, &group.p).unwrap();
        assert_eq!(
            y.to_hex(),
            "ab3d485627ba6272e0f9c0a9ae435e247c91df81a1743c12a89eeaf8ef52878a"
        );
    }
}
