//! Schnorr signatures over a safe-prime group (classic Z_p* Schnorr).
//!
//! The scheme: public parameters are a safe prime `p = 2q + 1`, the prime
//! subgroup order `q`, and a generator `g` of the order-`q` subgroup of
//! quadratic residues. A private key is `x ∈ [1, q)`; the public key is
//! `y = g^x mod p`. A signature on message `m` is `(e, s)` where
//! `r = g^k mod p`, `e = SHA-256(r || m)`, `s = k + x·e mod q`, and the
//! nonce `k` is derived deterministically from `(x, m)` (RFC 6979 style) so
//! that signing never needs ambient randomness.
//!
//! Verification recomputes `r' = g^s · y^(−e) mod p` and accepts iff
//! `SHA-256(r' || m) == e`.

use crate::drbg::Drbg;
use crate::hmac::hmac_sha256;
use crate::intern::{
    self, verify_table_policy, InternedKey, KeyRegistry, TablePolicy, PROMOTION_THRESHOLD,
};
use crate::sha256::Sha256;
use ccc_bignum::{
    joint_pow_with_powers, window_powers, FixedBaseTable, MontElem, MontgomeryCtx, Uint,
};
// Sync primitives come from the ccc-mc shim layer (std re-exports in
// normal builds, scheduler-instrumented under `model-check`); the group
// statics and per-key interning slots are on model-checked paths.
use ccc_mc::{AtomicU64, OnceLock};
use std::fmt;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Global count of key-pair derivations (scalar sampling + `g^x`).
///
/// Deriving a key is the most expensive primitive in the stack (one
/// fixed-base exponentiation plus DRBG sampling), so callers that are
/// supposed to memoize — the corpus generator's CA key tables — assert via
/// [`keypair_derivations`] that repeated passes do not re-derive.
static KEYPAIR_DERIVATIONS: AtomicU64 = AtomicU64::new(0);

/// Process-wide number of [`KeyPair`] derivations performed so far.
///
/// Monotonic counter; meaningful as a *delta* around a workload. Used by
/// `ccc-testgen` to pin the "each CA key is derived exactly once per
/// corpus" memoization property.
pub fn keypair_derivations() -> u64 {
    // ordering: Relaxed — monotonic counter read as a workload delta; no
    // other memory is synchronized through it.
    KEYPAIR_DERIVATIONS.load(Ordering::Relaxed)
}

/// Identifies one of the built-in groups. Certificates record the group of
/// their key so that mixed-group universes are representable.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum GroupId {
    /// 256-bit safe-prime simulation group (fast; default for experiments).
    Sim256,
    /// RFC 3526 1536-bit MODP group (interop-grade strength).
    Rfc3526_1536,
}

/// Schnorr group parameters.
#[derive(Debug)]
pub struct Group {
    /// Which built-in group this is.
    pub id: GroupId,
    /// Safe prime modulus.
    pub p: Uint,
    /// Prime subgroup order, `q = (p - 1) / 2`.
    pub q: Uint,
    /// Generator of the order-`q` subgroup.
    pub g: Uint,
    /// Serialized length of group elements in bytes.
    pub element_len: usize,
    /// Serialized length of scalars in bytes.
    pub scalar_len: usize,
    /// Lazily-built Montgomery context + fixed-base generator tables
    /// (see [`Group::ops`]).
    ops: OnceLock<GroupOps>,
}

/// Per-group accelerated arithmetic, built once per process on first use.
///
/// `ctx` is the Montgomery context for the group prime `p`; `g_table` holds
/// the Brauer fixed-base windowing tables for the generator `g` covering
/// exponents up to `q.bit_len()` bits (every scalar in the scheme is
/// `< q`). Together they make `g^k` a squaring-free table-lookup product,
/// which is the dominant operation in keygen, signing, *and* the `g^s`
/// half of verification.
#[derive(Debug)]
pub struct GroupOps {
    /// Montgomery context for the group prime `p`.
    pub ctx: MontgomeryCtx,
    /// Fixed-base tables for the generator `g`.
    pub g_table: FixedBaseTable,
    /// Wide (8-bit window) generator table for batch verification, built
    /// lazily on the first batched check in this group: every batched
    /// item exponentiates `g`, so halving the per-exponentiation lookup
    /// count is worth the one-time ~16× larger build that a per-key
    /// table could not amortize (~260 KiB at 256 bits, ~9.4 MiB at 1536).
    g_wide: OnceLock<FixedBaseTable>,
}

/// Window width of the batch-verification tables (the shared generator
/// table here and the per-key wide tables in `intern`).
pub(crate) const WIDE_WINDOW: usize = 8;

impl GroupOps {
    /// The wide generator table, built on first use and covering
    /// exponents up to `max_exp_bits` bits (callers pass the group's
    /// `q.bit_len()`; concurrent callers coalesce on the `OnceLock`).
    pub fn g_wide_table(&self, max_exp_bits: usize) -> &FixedBaseTable {
        self.g_wide.get_or_init(|| {
            FixedBaseTable::from_mont_with_window(
                &self.ctx,
                &self.g_table.first_row()[0],
                max_exp_bits,
                WIDE_WINDOW,
            )
        })
    }
}

impl Group {
    /// The 256-bit safe-prime simulation group.
    ///
    /// Generated once with a fixed seed; `p` and `q = (p-1)/2` are verified
    /// prime by this crate's Miller–Rabin tests.
    pub fn simulation_256() -> &'static Group {
        static G: OnceLock<Group> = OnceLock::new();
        G.get_or_init(|| {
            let p = Uint::from_hex(
                "edb9229e9df73cb4f4a416fb005f7dae9ccae82ad2ba6b58e7e1c47ebc596f0b",
            )
            .expect("p is valid hex");
            let q = Uint::from_hex(
                "76dc914f4efb9e5a7a520b7d802fbed74e657415695d35ac73f0e23f5e2cb785",
            )
            .expect("q is valid hex");
            Group {
                id: GroupId::Sim256,
                p,
                q,
                g: Uint::from_u64(4),
                element_len: 32,
                scalar_len: 32,
                ops: OnceLock::new(),
            }
        })
    }

    /// The RFC 3526 1536-bit MODP group (group 5). `p ≡ 7 (mod 8)`, so 2 is
    /// a quadratic residue and generates the order-`q` subgroup.
    pub fn rfc3526_1536() -> &'static Group {
        static G: OnceLock<Group> = OnceLock::new();
        G.get_or_init(|| {
            let p = Uint::from_hex(concat!(
                "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1",
                "29024E088A67CC74020BBEA63B139B22514A08798E3404DD",
                "EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245",
                "E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED",
                "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3D",
                "C2007CB8A163BF0598DA48361C55D39A69163FA8FD24CF5F",
                "83655D23DCA3AD961C62F356208552BB9ED529077096966D",
                "670C354E4ABC9804F1746C08CA237327FFFFFFFFFFFFFFFF"
            ))
            .expect("RFC 3526 modulus is valid hex");
            let q = p.checked_sub(&Uint::one()).expect("p > 1").shr(1);
            Group {
                id: GroupId::Rfc3526_1536,
                p,
                q,
                g: Uint::from_u64(2),
                element_len: 192,
                scalar_len: 192,
                ops: OnceLock::new(),
            }
        })
    }

    /// Look up a group by id.
    pub fn by_id(id: GroupId) -> &'static Group {
        match id {
            GroupId::Sim256 => Group::simulation_256(),
            GroupId::Rfc3526_1536 => Group::rfc3526_1536(),
        }
    }

    /// The accelerated-arithmetic bundle for this group, built on first
    /// use (~30 KiB of tables for the 256-bit group, ~1.1 MiB for the
    /// 1536-bit group) and shared by every key in the group thereafter.
    pub fn ops(&self) -> &GroupOps {
        self.ops.get_or_init(|| {
            let ctx = MontgomeryCtx::new(&self.p)
                .expect("group prime is odd and > 1");
            let g_table = FixedBaseTable::new(&ctx, &self.g, self.q.bit_len());
            GroupOps {
                ctx,
                g_table,
                g_wide: OnceLock::new(),
            }
        })
    }

    /// `g^k mod p` via the fixed-base tables (normal form).
    pub fn pow_g(&self, k: &Uint) -> Uint {
        let ops = self.ops();
        ops.g_table.pow(&ops.ctx, k)
    }

    /// `g^k mod p` in Montgomery form (for callers that keep computing).
    fn pow_g_mont(&self, k: &Uint) -> MontElem {
        let ops = self.ops();
        ops.g_table.pow_mont(&ops.ctx, k)
    }
}

/// A Schnorr private key.
#[derive(Clone, PartialEq, Eq)]
pub struct PrivateKey {
    group: GroupId,
    x: Uint,
}

impl fmt::Debug for PrivateKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print key material.
        write!(f, "PrivateKey({:?}, <redacted>)", self.group)
    }
}

/// Which implementation strategy one verification uses.
///
/// Both routes compute the identical `g^s · y^(q-e) mod p` residue — the
/// choice is pure performance and never changes a verdict. [`PublicKey::
/// verify`](PublicKey::verify) picks automatically (promotion threshold +
/// [`TablePolicy`]); [`PublicKey::verify_via`] forces a route for benches
/// and differential tests.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum VerifyRoute {
    /// Hot path: the key's per-process Brauer table — two zero-squaring
    /// fixed-base lookups (`g^s`, `y^(q-e)`) and one multiplication.
    FixedBase,
    /// Cold path: one Straus joint exponentiation sharing a single
    /// squaring chain, reusing the generator's table row so only the
    /// `y`-side digit table is built per call.
    MultiExp,
}

/// A Schnorr public key, `y = g^x mod p`.
#[derive(Clone)]
pub struct PublicKey {
    group: GroupId,
    /// `y` serialized big-endian, padded to the group element length.
    y_bytes: Vec<u8>,
    /// Interned per-process entry for `(group, y)`, resolved on first
    /// verification: the shared Montgomery residue, the promotion counter,
    /// and (once hot) the fixed-base table — shared by *every* `PublicKey`
    /// carrying these bytes, not just clones of this one (CA keys are
    /// re-parsed from thousands of certificates per corpus pass). Excluded
    /// from `Eq`/`Hash`: it is a pure cache of `y_bytes`.
    interned: OnceLock<Arc<InternedKey>>,
}

impl PartialEq for PublicKey {
    fn eq(&self, other: &Self) -> bool {
        self.group == other.group && self.y_bytes == other.y_bytes
    }
}

impl Eq for PublicKey {}

impl std::hash::Hash for PublicKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.group.hash(state);
        self.y_bytes.hash(state);
    }
}

impl fmt::Debug for PublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let prefix: String = self.y_bytes.iter().take(6).map(|b| format!("{b:02x}")).collect();
        write!(f, "PublicKey({:?}, {prefix}…)", self.group)
    }
}

/// A private/public key pair.
#[derive(Clone, Debug)]
pub struct KeyPair {
    /// The private half.
    pub private: PrivateKey,
    /// The public half.
    pub public: PublicKey,
}

/// A Schnorr signature `(e, s)`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Signature {
    /// Challenge hash `e = SHA-256(r || m)`.
    pub e: [u8; 32],
    /// Response scalar `s`, serialized to the group scalar length.
    pub s: Vec<u8>,
}

impl Signature {
    /// Serialize as `e || s`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + self.s.len());
        out.extend_from_slice(&self.e);
        out.extend_from_slice(&self.s);
        out
    }

    /// Parse from `e || s` given the scalar length of the signing group.
    pub fn from_bytes(bytes: &[u8], scalar_len: usize) -> Option<Signature> {
        if bytes.len() != 32 + scalar_len {
            return None;
        }
        let mut e = [0u8; 32];
        e.copy_from_slice(&bytes[..32]);
        Some(Signature {
            e,
            s: bytes[32..].to_vec(),
        })
    }
}

impl KeyPair {
    /// Generate a key pair from a DRBG stream.
    pub fn generate(group: &Group, drbg: &mut Drbg) -> KeyPair {
        // ordering: Relaxed — pure monotonic count; the RMW's atomicity
        // alone guarantees no derivation goes uncounted.
        KEYPAIR_DERIVATIONS.fetch_add(1, Ordering::Relaxed);
        loop {
            let candidate = Uint::from_bytes_be(&drbg.bytes(group.scalar_len));
            let x = candidate.rem(&group.q).expect("q is non-zero");
            if !x.is_zero() {
                return KeyPair::from_scalar(group, x);
            }
        }
    }

    /// Deterministically derive a key pair from a byte seed.
    pub fn from_seed(group: &Group, seed: &[u8]) -> KeyPair {
        let mut drbg = Drbg::new(seed);
        KeyPair::generate(group, &mut drbg)
    }

    fn from_scalar(group: &Group, x: Uint) -> KeyPair {
        // Fixed-base: g is exponentiated via the precomputed tables.
        let y = group.pow_g(&x);
        let y_bytes = y
            .to_bytes_be_padded(group.element_len)
            .expect("y < p fits in element_len");
        KeyPair {
            private: PrivateKey { group: group.id, x },
            public: PublicKey {
                group: group.id,
                y_bytes,
                interned: OnceLock::new(),
            },
        }
    }
}

impl PrivateKey {
    /// The group this key belongs to.
    pub fn group(&self) -> &'static Group {
        Group::by_id(self.group)
    }

    /// Sign `message` with a deterministic nonce.
    pub fn sign(&self, message: &[u8]) -> Signature {
        let group = self.group();
        // Deterministic nonce: k = HMAC(x, m) expanded until non-zero mod q.
        let x_bytes = self
            .x
            .to_bytes_be_padded(group.scalar_len)
            .expect("x < q fits");
        let mut k_seed = hmac_sha256(&x_bytes, message).to_vec();
        let k = loop {
            // Expand to scalar length by chained HMAC blocks.
            let mut material = Vec::with_capacity(group.scalar_len);
            let mut block = k_seed.clone();
            while material.len() < group.scalar_len {
                block = hmac_sha256(&x_bytes, &block).to_vec();
                material.extend_from_slice(&block);
            }
            material.truncate(group.scalar_len);
            let k = Uint::from_bytes_be(&material).rem(&group.q).expect("q is non-zero");
            if !k.is_zero() {
                break k;
            }
            k_seed = hmac_sha256(&x_bytes, &k_seed).to_vec();
        };
        let r = group.pow_g(&k);
        let r_bytes = r
            .to_bytes_be_padded(group.element_len)
            .expect("r < p fits the element length");
        let mut h = Sha256::new();
        h.update(&r_bytes);
        h.update(message);
        let e = h.finalize();
        let e_scalar = Uint::from_bytes_be(&e).rem(&group.q).expect("q is non-zero");
        let s = k.add_mod(&self.x.mul_mod(&e_scalar, &group.q), &group.q);
        Signature {
            e,
            s: s.to_bytes_be_padded(group.scalar_len).expect("s < q fits"),
        }
    }
}

impl PublicKey {
    /// The group this key belongs to.
    pub fn group(&self) -> &'static Group {
        Group::by_id(self.group)
    }

    /// The group id (cheap accessor for serialization).
    pub fn group_id(&self) -> GroupId {
        self.group
    }

    /// Raw serialized key material (`y`, big-endian, fixed width).
    pub fn as_bytes(&self) -> &[u8] {
        &self.y_bytes
    }

    /// Reconstruct a key from serialized material.
    ///
    /// Returns `None` when the length is wrong or `y` is not in `[2, p)`
    /// (1 and 0 are degenerate). Membership in the order-`q` subgroup is
    /// deliberately *not* checked here, matching how real validators treat
    /// SPKIs — parsing must stay cheap and permissive so malformed corpus
    /// keys flow through the analyses. Callers that need the stronger
    /// guarantee (trust-anchor loading, key provenance audits) ask via
    /// [`PublicKey::is_subgroup_member`], which caches its one extra
    /// exponentiation per unique key.
    pub fn from_bytes(group: &Group, bytes: &[u8]) -> Option<PublicKey> {
        if bytes.len() != group.element_len {
            return None;
        }
        let y = Uint::from_bytes_be(bytes);
        if y < Uint::from_u64(2) || y >= group.p {
            return None;
        }
        Some(PublicKey {
            group: group.id,
            y_bytes: bytes.to_vec(),
            interned: OnceLock::new(),
        })
    }

    /// The process-wide interned entry for this key: shared Montgomery
    /// residue, promotion counter, fixed-base table, subgroup verdict.
    /// Crate-visible so the batch verifier shares the same entries (and
    /// therefore the same promotion ordinals) as the scalar path.
    pub(crate) fn interned(&self) -> &Arc<InternedKey> {
        self.interned
            .get_or_init(|| KeyRegistry::global().intern(self.group(), &self.y_bytes))
    }

    /// Whether `y` lies in the order-`q` subgroup (`y^q ≡ 1 mod p`).
    ///
    /// This is the check [`PublicKey::from_bytes`] skips. The verdict is
    /// computed lazily with one exponentiation (via the promoted table
    /// when one exists) and cached on the interned entry, so sweeping a
    /// corpus costs one check per unique CA key, not per certificate.
    pub fn is_subgroup_member(&self) -> bool {
        self.interned().is_subgroup_member()
    }

    /// Verify `signature` over `message`.
    ///
    /// Routing: each verification is recorded on the key's interned entry,
    /// and under [`TablePolicy::Auto`] the key is promoted to the
    /// [`VerifyRoute::FixedBase`] hot path once it has been verified
    /// against more than [`PROMOTION_THRESHOLD`] times — amortizing the
    /// per-key table build across the many verifications a CA key sees.
    /// Colder keys take the [`VerifyRoute::MultiExp`] Straus path, which
    /// needs no per-key precomputation. `CCC_VERIFY_TABLES=always|never`
    /// forces one route for every key. Verdicts are identical either way.
    pub fn verify(&self, message: &[u8], signature: &Signature) -> bool {
        let n = self.interned().record_verify();
        let route = match verify_table_policy() {
            TablePolicy::Always => VerifyRoute::FixedBase,
            TablePolicy::Never => VerifyRoute::MultiExp,
            TablePolicy::Auto if n > PROMOTION_THRESHOLD => VerifyRoute::FixedBase,
            TablePolicy::Auto => VerifyRoute::MultiExp,
        };
        self.verify_via(route, message, signature)
    }

    /// Verify `signature` over `message` on an explicitly chosen route,
    /// bypassing promotion accounting (benches and differential tests;
    /// normal callers use [`PublicKey::verify`]).
    pub fn verify_via(&self, route: VerifyRoute, message: &[u8], signature: &Signature) -> bool {
        let group = self.group();
        if signature.s.len() != group.scalar_len {
            return false;
        }
        let s = Uint::from_bytes_be(&signature.s);
        if s >= group.q {
            return false;
        }
        let e_scalar = Uint::from_bytes_be(&signature.e)
            .rem(&group.q)
            .expect("q is non-zero");
        // r' = g^s * y^(q - e) mod p   (y has order q, so y^-e = y^(q-e)).
        // Everything stays in Montgomery form until the single final
        // conversion, on either route.
        let neg_e = group.q.checked_sub(&e_scalar).expect("e_scalar < q");
        let ops = group.ops();
        let entry = self.interned();
        let r_mont = match route {
            VerifyRoute::FixedBase => {
                // Hot: both halves are zero-squaring table lookups — g via
                // the group table, y via the key's interned table (built on
                // first hot use, then shared process-wide).
                let y_table = entry.table(&ops.ctx, group.q.bit_len());
                intern::note_fixed_base_hit();
                let gs = group.pow_g_mont(&s);
                ops.ctx.mul(&gs, &y_table.pow_mont(&ops.ctx, &neg_e))
            }
            VerifyRoute::MultiExp => {
                // Cold: one Straus joint exponentiation — a single shared
                // squaring chain instead of two. The generator side reuses
                // the group table's first row as its digit table, so the
                // only per-call setup is y's 15-entry window.
                intern::note_cold_multiexp();
                joint_pow_with_powers(
                    &ops.ctx,
                    ops.g_table.first_row(),
                    &s,
                    &window_powers(&ops.ctx, entry.y_mont()),
                    &neg_e,
                )
            }
        };
        let r = ops.ctx.from_montgomery(&r_mont);
        let r_bytes = match r.to_bytes_be_padded(group.element_len) {
            Some(b) => b,
            None => return false,
        };
        let mut h = Sha256::new();
        h.update(&r_bytes);
        h.update(message);
        h.finalize() == signature.e
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccc_bignum::modpow;

    #[test]
    fn sign_verify_roundtrip() {
        let group = Group::simulation_256();
        let kp = KeyPair::from_seed(group, b"test-key-1");
        let msg = b"hello, web pki";
        let sig = kp.private.sign(msg);
        assert!(kp.public.verify(msg, &sig));
    }

    #[test]
    fn wrong_message_rejected() {
        let group = Group::simulation_256();
        let kp = KeyPair::from_seed(group, b"test-key-2");
        let sig = kp.private.sign(b"message A");
        assert!(!kp.public.verify(b"message B", &sig));
    }

    #[test]
    fn wrong_key_rejected() {
        let group = Group::simulation_256();
        let kp1 = KeyPair::from_seed(group, b"key-a");
        let kp2 = KeyPair::from_seed(group, b"key-b");
        let sig = kp1.private.sign(b"msg");
        assert!(!kp2.public.verify(b"msg", &sig));
    }

    #[test]
    fn tampered_signature_rejected() {
        let group = Group::simulation_256();
        let kp = KeyPair::from_seed(group, b"key-c");
        let mut sig = kp.private.sign(b"msg");
        sig.e[0] ^= 1;
        assert!(!kp.public.verify(b"msg", &sig));
        let mut sig2 = kp.private.sign(b"msg");
        sig2.s[31] ^= 1;
        assert!(!kp.public.verify(b"msg", &sig2));
    }

    #[test]
    fn signature_is_deterministic() {
        let group = Group::simulation_256();
        let kp = KeyPair::from_seed(group, b"key-d");
        assert_eq!(kp.private.sign(b"m"), kp.private.sign(b"m"));
        assert_ne!(kp.private.sign(b"m"), kp.private.sign(b"n"));
    }

    #[test]
    fn keygen_is_deterministic_from_seed() {
        let group = Group::simulation_256();
        let a = KeyPair::from_seed(group, b"same-seed");
        let b = KeyPair::from_seed(group, b"same-seed");
        assert_eq!(a.public, b.public);
        let c = KeyPair::from_seed(group, b"other-seed");
        assert_ne!(a.public, c.public);
    }

    #[test]
    fn public_key_serialization_roundtrip() {
        let group = Group::simulation_256();
        let kp = KeyPair::from_seed(group, b"key-e");
        let bytes = kp.public.as_bytes().to_vec();
        let restored = PublicKey::from_bytes(group, &bytes).unwrap();
        assert_eq!(restored, kp.public);
        let sig = kp.private.sign(b"m");
        assert!(restored.verify(b"m", &sig));
    }

    #[test]
    fn public_key_rejects_bad_material() {
        let group = Group::simulation_256();
        assert!(PublicKey::from_bytes(group, &[0u8; 31]).is_none());
        assert!(PublicKey::from_bytes(group, &[0u8; 32]).is_none()); // y = 0
        let one = {
            let mut b = [0u8; 32];
            b[31] = 1;
            b
        };
        assert!(PublicKey::from_bytes(group, &one).is_none()); // y = 1
        assert!(PublicKey::from_bytes(group, &[0xffu8; 32]).is_none()); // y >= p
    }

    #[test]
    fn signature_serialization_roundtrip() {
        let group = Group::simulation_256();
        let kp = KeyPair::from_seed(group, b"key-f");
        let sig = kp.private.sign(b"m");
        let bytes = sig.to_bytes();
        let parsed = Signature::from_bytes(&bytes, group.scalar_len).unwrap();
        assert_eq!(parsed, sig);
        assert!(Signature::from_bytes(&bytes[..10], group.scalar_len).is_none());
    }

    #[test]
    fn rfc3526_group_works() {
        let group = Group::rfc3526_1536();
        let kp = KeyPair::from_seed(group, b"big-key");
        let sig = kp.private.sign(b"interop message");
        assert!(kp.public.verify(b"interop message", &sig));
        assert!(!kp.public.verify(b"tampered", &sig));
    }

    #[test]
    fn pow_g_matches_generic_modpow() {
        for group in [Group::simulation_256(), Group::rfc3526_1536()] {
            for e in [
                Uint::zero(),
                Uint::one(),
                Uint::from_u64(0xdead_beef_cafe_f00d),
                group.q.checked_sub(&Uint::one()).unwrap(),
            ] {
                assert_eq!(
                    group.pow_g(&e),
                    modpow(&group.g, &e, &group.p).unwrap(),
                    "{:?} e={e:?}",
                    group.id
                );
            }
        }
    }

    #[test]
    fn public_key_equality_ignores_mont_cache() {
        let group = Group::simulation_256();
        let kp = KeyPair::from_seed(group, b"cache-key");
        let fresh = PublicKey::from_bytes(group, kp.public.as_bytes()).unwrap();
        // Warm the Montgomery cache on one copy only.
        let sig = kp.private.sign(b"warm");
        assert!(kp.public.verify(b"warm", &sig));
        assert_eq!(kp.public, fresh);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |k: &PublicKey| {
            let mut s = DefaultHasher::new();
            k.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&kp.public), h(&fresh));
    }

    #[test]
    fn verify_routes_agree_on_verdicts() {
        for group in [Group::simulation_256(), Group::rfc3526_1536()] {
            let kp = KeyPair::from_seed(group, b"route-key");
            let sig = kp.private.sign(b"routed message");
            assert!(kp.public.verify_via(VerifyRoute::MultiExp, b"routed message", &sig));
            assert!(kp.public.verify_via(VerifyRoute::FixedBase, b"routed message", &sig));
            assert!(!kp.public.verify_via(VerifyRoute::MultiExp, b"other", &sig));
            assert!(!kp.public.verify_via(VerifyRoute::FixedBase, b"other", &sig));
            let mut forged = sig.clone();
            forged.e[7] ^= 0x40;
            assert!(!kp.public.verify_via(VerifyRoute::MultiExp, b"routed message", &forged));
            assert!(!kp.public.verify_via(VerifyRoute::FixedBase, b"routed message", &forged));
        }
    }

    #[test]
    fn auto_promotion_builds_table_after_threshold() {
        // A fresh key (unique seed → unique interned entry in the global
        // registry) starts cold and flips hot after PROMOTION_THRESHOLD
        // verifications. Policy may be overridden concurrently by the
        // policy_roundtrip test, so only the table side effect — which any
        // policy except Never eventually triggers — is asserted loosely;
        // the strict split is pinned in the verify_routes integration
        // tests, which own the policy in their own process.
        let group = Group::simulation_256();
        let kp = KeyPair::from_seed(group, b"promotion-key-schnorr-unit");
        let sig = kp.private.sign(b"promote me");
        for _ in 0..(PROMOTION_THRESHOLD + 2) {
            assert!(kp.public.verify(b"promote me", &sig));
        }
        // The interned counter saw every auto-routed verification.
        let entry = KeyRegistry::global().intern(group, kp.public.as_bytes());
        assert!(entry.verify_count() >= PROMOTION_THRESHOLD + 2);
    }

    #[test]
    fn subgroup_membership_accepts_real_keys_and_rejects_order_two() {
        let group = Group::simulation_256();
        let kp = KeyPair::from_seed(group, b"subgroup-key");
        assert!(kp.public.is_subgroup_member());
        // y = p - 1 has order 2: it passes the permissive range check in
        // from_bytes but is not a quadratic residue, so y^q = -1 ≠ 1.
        let p_minus_1 = group
            .p
            .checked_sub(&Uint::one())
            .unwrap()
            .to_bytes_be_padded(group.element_len)
            .unwrap();
        let outsider = PublicKey::from_bytes(group, &p_minus_1).unwrap();
        assert!(!outsider.is_subgroup_member());
    }

    #[test]
    fn keypair_derivation_counter_increments() {
        let group = Group::simulation_256();
        let before = keypair_derivations();
        let _ = KeyPair::from_seed(group, b"counted-key");
        assert!(keypair_derivations() > before);
    }

    #[test]
    fn known_discrete_log_vector() {
        // Cross-check modpow against an independently computed vector.
        let group = Group::simulation_256();
        let x = Uint::from_hex("1eadbeef1eadbeef1eadbeef1eadbeef").unwrap();
        let y = modpow(&group.g, &x, &group.p).unwrap();
        assert_eq!(
            y.to_hex(),
            "ab3d485627ba6272e0f9c0a9ae435e247c91df81a1743c12a89eeaf8ef52878a"
        );
    }
}
