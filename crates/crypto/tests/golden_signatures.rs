//! Golden signature vectors.
//!
//! These vectors were produced by the *pre-Montgomery* implementation
//! (bit-by-bit square-and-multiply with schoolbook reduction). The
//! Montgomery/fixed-window/fixed-base stack performs the same exact
//! integer arithmetic, so deterministic keygen and signing must reproduce
//! them byte-for-byte, and verification must still accept — any drift here
//! means the optimized arithmetic changed a result, not just its speed.

use ccc_crypto::{Group, KeyPair, Signature};

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn unhex(s: &str) -> Vec<u8> {
    assert_eq!(s.len() % 2, 0);
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).expect("valid hex"))
        .collect()
}

struct GoldenVector {
    group: &'static str,
    seed: &'static [u8],
    message: &'static [u8],
    public: &'static str,
    signature: &'static str,
}

const VECTORS: &[GoldenVector] = &[
    GoldenVector {
        group: "sim256",
        seed: b"golden-key-1",
        message: b"golden message one",
        public: "57cffb1bcf0501870e0a1b9b65edeb7dc571a0cd4a3047dcb2311993efe53314",
        signature: "38a527047b363fc2e3f6b11c4a61e4e077087e0f569051bdaedf7778a4fb640b\
                    132163a43d62f0f81ab2ad149bf55b1e1d53a911930b8388d46b642149fe16b7",
    },
    GoldenVector {
        group: "sim256",
        seed: b"golden-key-2",
        message: b"chain-chaos golden vector",
        public: "d8e53262263edeff0bf298c0392c3f28d7df08c91349bcf5dd831a184a5ade2d",
        signature: "eb6b11bf51e5b0c4b3245ffaa598455c571f2026eb5baaa815f6b9600ecfb636\
                    5ee31d37ab56fcfe4cf0c4c86579f8946ca923be05ebadfa548ed42363ea9580",
    },
    GoldenVector {
        group: "rfc3526",
        seed: b"golden-key-1",
        message: b"golden message one",
        public: "9b8faa59c72c1821d460e0ddbe9848b2e341a04bd01aa917584d508a2f562ac9\
                 9d6031a2988fe58c9bd92d42fc4c8fbb762c8f9e45f190573848d2eb53f5c6bb\
                 d9b82c3684d2f97799027778504f73c29f36e6641fe5d69f198d533033657e07\
                 75a3967ac2139fbbb636fde61972b1558551d1935c08814f4bdeb75d1407ee20\
                 557394f6b90f731ec0770bf5e0883b68d3b298cdf2864404e471a0534924a6eb\
                 ddb89382026260110e4e0d306e04a426c681a8a0b62f436bb8290ca35199ae22",
        signature: "74026bc6e3cd990317abcec422568de54feaa027ed7fe0b1ccb544c107b938bf\
                    3b1c993989377fbf6bd2cbe9615b9b2e34c8799ffbb724d0eee6a0c6fd83a6e6\
                    dd79c95d31c7d4d3ef082079b9f963cce244fdffa8de01216e1caa7744b6c31d\
                    7476aa30dce2fc64d6771e3a9e96818418836803f504c60943fb4532f7620691\
                    8c19f8b3cbdefb78fe804b180f80bf1de7afc2e3b76e248963b532ed6246b19d\
                    cda0a05ab4a529a2fba1778ba68d65f1942d31ce3e97e0ff68e4a8d09f17e21d\
                    eec4362facbcf384d91a23d7fe1f6ae6cc09c8c6c47aadafac71b2eb335a2a0e",
    },
    GoldenVector {
        group: "rfc3526",
        seed: b"golden-key-2",
        message: b"chain-chaos golden vector",
        public: "d5c15aaa458b765e87060e12358c63424bab0d6359be8fe1fdea6d446f022742\
                 ee17afeaecdf6079e465222c0b8bde736918c45262d6ab83502c2196c39e11bc\
                 5c55c3514b14159359d798fc691ab6ee9b1c6c35a2776e156958c6c027bb9bd7\
                 d16736ef7f224ebce78507efccf80e46749414b11fa1185e6ecc22ac2fe45d3b\
                 b8ff6ed35aa6a2f1c4371fa203fc40350ec97635c92096e5e0b240bb2977cb80\
                 10e4435f89cc6bb337289af7fa6f4d36e799ad18df1fee3940708e3bab284a83",
        signature: "7dc0e9f68e6a7a6809094f8b8dfa90c54bb77373b13056c80976ea3fdf05b69c\
                    76ed0be955409a1e38b19918185240223645abd3b414cfc623ff2591a20e815b\
                    065953414089cc4faa381c92666f36575a2f07774fe69e6b760195031565980c\
                    f7d28ba5f54e764f2f37c17877a6f640455ad9b3c4c88931b5e9d976a1a1a435\
                    7cd39fd1ab345416595a126d811f4b6a19959a70e4e3831189be1b321868f276\
                    93a5fb622280e1271354eeec3495b9e034f03c84382572b2ac54a175687f1693\
                    6ece7c6077f973d473a30a12a2679101487fab809064c4179503f2a336709644",
    },
];

fn group_by_name(name: &str) -> &'static Group {
    match name {
        "sim256" => Group::simulation_256(),
        "rfc3526" => Group::rfc3526_1536(),
        other => panic!("unknown group {other}"),
    }
}

#[test]
fn deterministic_keygen_reproduces_golden_public_keys() {
    for v in VECTORS {
        let group = group_by_name(v.group);
        let kp = KeyPair::from_seed(group, v.seed);
        assert_eq!(
            hex(kp.public.as_bytes()),
            v.public.replace(char::is_whitespace, ""),
            "{} / {:?}",
            v.group,
            String::from_utf8_lossy(v.seed)
        );
    }
}

#[test]
fn deterministic_signing_reproduces_golden_signatures() {
    for v in VECTORS {
        let group = group_by_name(v.group);
        let kp = KeyPair::from_seed(group, v.seed);
        let sig = kp.private.sign(v.message);
        assert_eq!(
            hex(&sig.to_bytes()),
            v.signature.replace(char::is_whitespace, ""),
            "{} / {:?}",
            v.group,
            String::from_utf8_lossy(v.seed)
        );
    }
}

#[test]
fn golden_signatures_still_verify() {
    for v in VECTORS {
        let group = group_by_name(v.group);
        let kp = KeyPair::from_seed(group, v.seed);
        let sig_bytes = unhex(&v.signature.replace(char::is_whitespace, ""));
        let sig = Signature::from_bytes(&sig_bytes, group.scalar_len).unwrap();
        assert!(kp.public.verify(v.message, &sig), "{}", v.group);
        assert!(!kp.public.verify(b"tampered", &sig));
    }
}
