//! Exact promotion accounting for the verify hot/cold routing.
//!
//! The route counters are process-global, so pinning *exact* splits
//! requires a quiescent process: this file holds a single test and
//! therefore gets its own binary with nothing running concurrently.
//! (Route *verdict* equivalence, which needs no such isolation, lives in
//! `verify_routes.rs`.)

use ccc_crypto::{
    set_verify_table_policy, verify_route_stats, Group, KeyPair, KeyRegistry, TablePolicy,
    PROMOTION_THRESHOLD,
};

#[test]
fn promotion_threshold_and_policies_route_as_documented() {
    let group = Group::simulation_256();
    let total = PROMOTION_THRESHOLD + 5;

    // Auto: first PROMOTION_THRESHOLD verifications go cold, the rest hot,
    // and the flip builds exactly one table.
    set_verify_table_policy(TablePolicy::Auto);
    let kp = KeyPair::from_seed(group, b"promotion-threshold-auto");
    let sig = kp.private.sign(b"promote");
    let before = verify_route_stats();
    for _ in 0..total {
        assert!(kp.public.verify(b"promote", &sig));
    }
    let delta = verify_route_stats().since(&before);
    assert_eq!(delta.cold_multiexps, PROMOTION_THRESHOLD);
    assert_eq!(delta.fixed_base_hits, total - PROMOTION_THRESHOLD);
    assert_eq!(delta.tables_built, 1);
    let entry = KeyRegistry::global().intern(group, kp.public.as_bytes());
    assert_eq!(entry.verify_count(), total);
    assert!(entry.has_table());

    // Never: a fresh key stays cold forever; no table is built.
    set_verify_table_policy(TablePolicy::Never);
    let kp = KeyPair::from_seed(group, b"promotion-threshold-never");
    let sig = kp.private.sign(b"stay cold");
    let before = verify_route_stats();
    for _ in 0..total {
        assert!(kp.public.verify(b"stay cold", &sig));
    }
    let delta = verify_route_stats().since(&before);
    assert_eq!(delta.cold_multiexps, total);
    assert_eq!(delta.fixed_base_hits, 0);
    assert_eq!(delta.tables_built, 0);

    // Always: a fresh key is hot from its very first verification.
    set_verify_table_policy(TablePolicy::Always);
    let kp = KeyPair::from_seed(group, b"promotion-threshold-always");
    let sig = kp.private.sign(b"start hot");
    let before = verify_route_stats();
    for _ in 0..total {
        assert!(kp.public.verify(b"start hot", &sig));
    }
    let delta = verify_route_stats().since(&before);
    assert_eq!(delta.cold_multiexps, 0);
    assert_eq!(delta.fixed_base_hits, total);
    assert_eq!(delta.tables_built, 1);

    set_verify_table_policy(TablePolicy::Auto);
}
