//! Exhaustive interleaving checks for the `KeyRegistry` / `InternedKey`
//! concurrency (model-check builds only; tier-1 `cargo test -q` skips
//! this file).
//!
//! Each property creates its shared structures *fresh inside the model
//! closure* (so every explored execution starts from the same state) but
//! pre-warms the process-wide group statics outside it, which keeps the
//! per-execution scheduling points down to the ops under test.

#![cfg(feature = "model-check")]

use ccc_crypto::{Group, KeyPair, KeyRegistry, PROMOTION_THRESHOLD};
use ccc_mc::Explorer;
use std::sync::Arc;

/// Serializes the model tests in this binary: the route counters the
/// table-build property measures are process-global, and exploration
/// itself is cheap enough that parallelism buys nothing here. (Raw std
/// mutex on purpose — the harness lock must never become a model object.)
static TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    // Warm the process-global ccc-obs route-metric registration outside
    // the explorer (same reason as `warmed_key_bytes`): with the
    // registry OnceLocks already "done", in-run metric updates are
    // schedule-consistent atomic ops instead of a one-time init that
    // would make the first execution's op sequence diverge from replays.
    let _ = ccc_crypto::verify_route_stats();
    TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn warmed_key_bytes() -> Vec<u8> {
    let group = Group::simulation_256();
    // Building ops outside the explorer keeps the statics' OnceLocks in
    // the "done" state during runs (pure reads, pruned by sleep sets).
    let _ = group.ops();
    KeyPair::from_seed(group, b"model-check-key").public.as_bytes().to_vec()
}

/// Invariant: `record_verify` ordinals are unique and contiguous, so the
/// Auto-route split (`ordinal > PROMOTION_THRESHOLD` goes hot) is a pure
/// function of the ordinal — the hot/cold partition cannot depend on the
/// interleaving. Three concurrent verifiers starting two below the
/// threshold must always produce exactly two hot routes.
#[test]
fn promotion_ordinals_are_unique_and_route_invariantly() {
    let _guard = test_guard();
    let key_bytes = Arc::new(warmed_key_bytes());
    let exploration = Explorer::new().explore(move || {
        let group = Group::simulation_256();
        let registry = KeyRegistry::new();
        let entry = registry.intern(group, &key_bytes);
        // Advance to one below the threshold so the concurrent section
        // straddles the promotion boundary.
        for _ in 0..(PROMOTION_THRESHOLD - 1) {
            entry.record_verify();
        }
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let entry = Arc::clone(&entry);
                ccc_mc::spawn(move || entry.record_verify())
            })
            .collect();
        let mut ordinals: Vec<u64> = handles
            .into_iter()
            .map(|h| h.join().expect("verifier task"))
            .collect();
        ordinals.sort_unstable();
        assert_eq!(
            ordinals,
            vec![
                PROMOTION_THRESHOLD,
                PROMOTION_THRESHOLD + 1,
                PROMOTION_THRESHOLD + 2
            ],
            "promotion ordinals must be unique and contiguous"
        );
        let hot = ordinals.iter().filter(|&&n| n > PROMOTION_THRESHOLD).count();
        assert_eq!(hot, 2, "route split must be interleaving-independent");
        assert_eq!(entry.verify_count(), PROMOTION_THRESHOLD + 2);
    });
    assert!(exploration.failure.is_none(), "{:?}", exploration.failure);
    assert!(
        exploration.complete,
        "3-thread promotion-ordinal scenario must explore to fixpoint"
    );
    assert!(!exploration.truncated);
    assert!(exploration.lock_order.is_acyclic());
}

/// Invariant: concurrent interns of the same key coalesce on one shared
/// entry through the shard mutex, and the registry never double-inserts.
#[test]
fn interning_coalesces_across_tasks() {
    let _guard = test_guard();
    let key_bytes = Arc::new(warmed_key_bytes());
    let exploration = Explorer::new().explore(move || {
        let group = Group::simulation_256();
        let registry = Arc::new(KeyRegistry::new());
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let registry = Arc::clone(&registry);
                let key_bytes = Arc::clone(&key_bytes);
                ccc_mc::spawn(move || registry.intern(group, &key_bytes))
            })
            .collect();
        let entries: Vec<_> = handles
            .into_iter()
            .map(|h| h.join().expect("intern task"))
            .collect();
        assert!(
            Arc::ptr_eq(&entries[0], &entries[1]),
            "same key bytes must intern to one shared entry"
        );
        assert_eq!(registry.len(), 1);
    });
    assert!(exploration.failure.is_none(), "{:?}", exploration.failure);
    assert!(exploration.complete);
    // The shard mutexes appear as one lock class, never nested.
    assert!(exploration.lock_order.is_acyclic());
    assert!(exploration
        .lock_order
        .classes
        .iter()
        .any(|c| c.site.contains("intern.rs")));
}

/// Invariant: the per-key fixed-base table is built exactly once under
/// OnceLock coalescing — two concurrent `table()` calls in every
/// interleaving yield one build and the same table.
#[test]
fn table_promotion_builds_exactly_once() {
    let _guard = test_guard();
    let key_bytes = Arc::new(warmed_key_bytes());
    let exploration = Explorer::new().explore(move || {
        let group = Group::simulation_256();
        let registry = KeyRegistry::new();
        let entry = registry.intern(group, &key_bytes);
        let before = ccc_crypto::verify_route_stats();
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let entry = Arc::clone(&entry);
                ccc_mc::spawn(move || {
                    let group = Group::simulation_256();
                    let ops = group.ops();
                    entry.table(&ops.ctx, group.q.bit_len()) as *const _ as usize
                })
            })
            .collect();
        let tables: Vec<usize> = handles
            .into_iter()
            .map(|h| h.join().expect("table task"))
            .collect();
        assert_eq!(tables[0], tables[1], "both tasks must share one table");
        assert!(entry.has_table());
        let delta = ccc_crypto::verify_route_stats().since(&before);
        assert_eq!(delta.tables_built, 1, "initializer must run exactly once");
    });
    assert!(exploration.failure.is_none(), "{:?}", exploration.failure);
    assert!(
        exploration.complete,
        "2-thread OnceLock-coalescing scenario must explore to fixpoint"
    );
    assert!(!exploration.truncated);
    // The once-init slot shows up as a lock class; no cycles.
    assert!(exploration
        .lock_order
        .classes
        .iter()
        .any(|c| c.kind == ccc_mc::LockKind::OnceInit));
    assert!(exploration.lock_order.is_acyclic());
}

/// The subgroup-membership verdict caches once and is interleaving-
/// independent (both tasks read the same cached boolean).
#[test]
fn subgroup_verdict_coalesces() {
    let _guard = test_guard();
    let key_bytes = Arc::new(warmed_key_bytes());
    let exploration = Explorer::new().explore(move || {
        let group = Group::simulation_256();
        let registry = KeyRegistry::new();
        let entry = registry.intern(group, &key_bytes);
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let entry = Arc::clone(&entry);
                ccc_mc::spawn(move || entry.is_subgroup_member())
            })
            .collect();
        let verdicts: Vec<bool> = handles
            .into_iter()
            .map(|h| h.join().expect("subgroup task"))
            .collect();
        assert_eq!(verdicts[0], verdicts[1]);
        assert!(verdicts[0], "a derived public key lies in the subgroup");
    });
    assert!(exploration.failure.is_none(), "{:?}", exploration.failure);
    assert!(exploration.complete);
}
