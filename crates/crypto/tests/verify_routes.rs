//! Differential tests for the two verification routes.
//!
//! `PublicKey::verify` routes each check through either the hot per-key
//! fixed-base path or the cold Straus multi-exponentiation path. The routes
//! must be *verdict-identical* on every input — valid signatures, forged
//! signatures, out-of-range scalars, truncated challenges — because the
//! corpus analyses treat a verification failure as a compliance finding,
//! and a route-dependent verdict would make results depend on cache
//! temperature. Every test here pins routes explicitly via `verify_via`,
//! so none depends on (or mutates) the global `TablePolicy`; the exact
//! promotion split is pinned in `promotion_policy.rs`, which runs in its
//! own process where the global route counters are quiescent.

use ccc_crypto::{Group, KeyPair, Signature, VerifyRoute};
use proptest::prelude::*;

/// Both routes, for exhaustive pairing in assertions.
const ROUTES: [VerifyRoute; 2] = [VerifyRoute::MultiExp, VerifyRoute::FixedBase];

/// Assert every route returns the same verdict and return it.
fn unanimous(kp: &KeyPair, message: &[u8], sig: &Signature) -> bool {
    let cold = kp.public.verify_via(VerifyRoute::MultiExp, message, sig);
    let hot = kp.public.verify_via(VerifyRoute::FixedBase, message, sig);
    assert_eq!(cold, hot, "route verdicts diverged");
    cold
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn valid_signatures_verify_on_both_routes(
        seed in proptest::collection::vec(any::<u8>(), 1..24),
        message in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let group = Group::simulation_256();
        let kp = KeyPair::from_seed(group, &seed);
        let sig = kp.private.sign(&message);
        prop_assert!(unanimous(&kp, &message, &sig));
    }

    #[test]
    fn forged_signatures_reject_on_both_routes(
        seed in proptest::collection::vec(any::<u8>(), 1..24),
        message in proptest::collection::vec(any::<u8>(), 0..64),
        flip_byte in 0usize..64,
        flip_bit in 0u8..8,
        in_e in any::<bool>(),
    ) {
        let group = Group::simulation_256();
        let kp = KeyPair::from_seed(group, &seed);
        let mut sig = kp.private.sign(&message);
        if in_e {
            sig.e[flip_byte % 32] ^= 1 << flip_bit;
        } else {
            let idx = flip_byte % sig.s.len();
            sig.s[idx] ^= 1 << flip_bit;
        }
        // A bit flip may (astronomically unlikely) produce a different
        // valid signature; what matters is route agreement, so assert
        // unanimity and only then the expected rejection.
        prop_assert!(!unanimous(&kp, &message, &sig));
    }

    #[test]
    fn wrong_key_rejects_on_both_routes(
        seed_a in proptest::collection::vec(any::<u8>(), 1..24),
        message in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let group = Group::simulation_256();
        let signer = KeyPair::from_seed(group, &seed_a);
        let mut other_seed = seed_a.clone();
        other_seed.push(0x5a);
        let other = KeyPair::from_seed(group, &other_seed);
        let sig = signer.private.sign(&message);
        prop_assert!(!unanimous(&other, &message, &sig));
    }

    #[test]
    fn out_of_range_scalar_rejects_on_both_routes(
        seed in proptest::collection::vec(any::<u8>(), 1..24),
        message in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        // s >= q must be rejected before any arithmetic on either route.
        let group = Group::simulation_256();
        let kp = KeyPair::from_seed(group, &seed);
        let mut sig = kp.private.sign(&message);
        sig.s = group
            .q
            .to_bytes_be_padded(group.scalar_len)
            .expect("q fits scalar_len");
        for route in ROUTES {
            prop_assert!(!kp.public.verify_via(route, &message, &sig));
        }
        // All-ones scalar (well above q) as a second boundary probe.
        sig.s = vec![0xff; group.scalar_len];
        for route in ROUTES {
            prop_assert!(!kp.public.verify_via(route, &message, &sig));
        }
    }

    #[test]
    fn truncated_scalar_rejects_on_both_routes(
        seed in proptest::collection::vec(any::<u8>(), 1..24),
        message in proptest::collection::vec(any::<u8>(), 0..32),
        cut in 1usize..32,
    ) {
        let group = Group::simulation_256();
        let kp = KeyPair::from_seed(group, &seed);
        let mut sig = kp.private.sign(&message);
        sig.s.truncate(sig.s.len() - cut);
        for route in ROUTES {
            prop_assert!(!kp.public.verify_via(route, &message, &sig));
        }
    }

    #[test]
    fn zeroed_challenge_rejects_on_both_routes(
        seed in proptest::collection::vec(any::<u8>(), 1..24),
        message in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        // e = 0 drives the q - e subtraction to its neg_e = q boundary;
        // both routes must take it (and agree on rejection).
        let group = Group::simulation_256();
        let kp = KeyPair::from_seed(group, &seed);
        let mut sig = kp.private.sign(&message);
        sig.e = [0u8; 32];
        prop_assert!(!unanimous(&kp, &message, &sig));
    }
}

#[test]
fn rfc3526_routes_agree() {
    let group = Group::rfc3526_1536();
    let kp = KeyPair::from_seed(group, b"route-equiv-1536");
    let sig = kp.private.sign(b"big-group message");
    assert!(unanimous(&kp, b"big-group message", &sig));
    let mut forged = sig.clone();
    forged.e[0] ^= 0x80;
    assert!(!unanimous(&kp, b"big-group message", &forged));
}
