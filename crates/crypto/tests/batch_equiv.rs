//! Differential equivalence: `verify_batch` vs per-signature `verify`.
//!
//! Batch verdicts must be identical to scalar verdicts over arbitrary
//! corpora — valid signatures, forged challenges and responses,
//! truncated and out-of-range responses, wrong-key signatures, and keys
//! outside the order-`q` subgroup (which the aggregate self-check must
//! exclude rather than mis-verify). The fault-injection hook pins that
//! bisection heals exactly the corrupted indices and nothing else.
//!
//! Policy mutations (`Off`/`On`) live in one sequential test: the other
//! tests' assertions (verdict equality, no healing without faults) hold
//! under every policy, so a transient override racing them is harmless.

use ccc_crypto::batch::{verify_batch, verify_batch_with_fault, BatchItem};
use ccc_bignum::Uint;
use ccc_crypto::{set_verify_batch_policy, BatchPolicy, Group, KeyPair, PublicKey, Signature};
use proptest::prelude::*;

/// The deterministic signer pool (few CA keys signing many certs, like a
/// real corpus).
fn signers(group: &'static Group) -> Vec<KeyPair> {
    [b"batch-equiv-ca-0".as_slice(), b"batch-equiv-ca-1", b"batch-equiv-ca-2"]
        .iter()
        .map(|seed| KeyPair::from_seed(group, seed))
        .collect()
}

/// A key that passes parsing but lies outside the order-q subgroup:
/// `y = p − 1` has order 2.
fn outsider(group: &'static Group) -> PublicKey {
    let bytes = group
        .p
        .checked_sub(&Uint::one())
        .expect("p > 1")
        .to_bytes_be_padded(group.element_len)
        .expect("p - 1 fits");
    PublicKey::from_bytes(group, &bytes).expect("in range")
}

/// Build one corpus item from three fuzz bytes: which key verifies, how
/// the signature is mangled, and the message content.
fn build_item(
    group: &'static Group,
    keys: &[KeyPair],
    bad_key: &PublicKey,
    spec: (u8, u8, u8),
) -> (PublicKey, Vec<u8>, Signature) {
    let (key_sel, mutation, msg_byte) = spec;
    let ki = usize::from(key_sel) % (keys.len() + 1);
    let message = vec![msg_byte, msg_byte ^ 0x5a, 7, 9, msg_byte.wrapping_mul(3)];
    let signer = &keys[usize::from(key_sel) % keys.len()];
    let mut sig = signer.private.sign(&message);
    match mutation % 6 {
        0 => {}                   // valid (when the verifying key matches)
        1 => sig.e[0] ^= 0x01,    // forged challenge
        2 => {
            let last = sig.s.len() - 1;
            sig.s[last] ^= 0x80; // forged response
        }
        3 => sig.s.truncate(sig.s.len() / 2), // truncated response
        4 => {
            // Out of range: s = q exactly.
            sig.s = group
                .q
                .to_bytes_be_padded(group.scalar_len)
                .expect("q fits scalar_len");
        }
        5 => sig = keys[(usize::from(key_sel) + 1) % keys.len()].private.sign(&message),
        _ => unreachable!(),
    }
    let verifier = if ki == keys.len() {
        bad_key.clone()
    } else {
        keys[ki].public.clone()
    };
    (verifier, message, sig)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn batch_verdicts_match_individual(raw in proptest::collection::vec(any::<u8>(), 3..96)) {
        let group = Group::simulation_256();
        let keys = signers(group);
        let bad_key = outsider(group);
        let owned: Vec<(PublicKey, Vec<u8>, Signature)> = raw
            .chunks_exact(3)
            .map(|c| build_item(group, &keys, &bad_key, (c[0], c[1], c[2])))
            .collect();
        let items: Vec<BatchItem<'_>> = owned
            .iter()
            .map(|(k, m, s)| (k, m.as_slice(), s))
            .collect();
        let out = verify_batch(&items);
        let individual: Vec<bool> = items
            .iter()
            .map(|(k, m, s)| k.verify(m, s))
            .collect();
        prop_assert_eq!(&out.verdicts, &individual);
        let expected_invalid: Vec<usize> = individual
            .iter()
            .enumerate()
            .filter(|(_, v)| !**v)
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(&out.invalid, &expected_invalid);
        // No faults injected, so nothing may need healing.
        prop_assert!(out.healed.is_empty());
    }

    #[test]
    fn injected_fault_sets_are_localized_exactly(mask in any::<u16>()) {
        let group = Group::simulation_256();
        let ca = KeyPair::from_seed(group, b"batch-equiv-fault-ca");
        let messages: Vec<Vec<u8>> = (0..16u8).map(|i| vec![i, 0xaa, i ^ 0x33]).collect();
        let sigs: Vec<Signature> = messages.iter().map(|m| ca.private.sign(m)).collect();
        let items: Vec<BatchItem<'_>> = messages
            .iter()
            .zip(&sigs)
            .map(|(m, s)| (&ca.public, m.as_slice(), s))
            .collect();
        let faults: Vec<usize> = (0..16).filter(|i| mask & (1 << i) != 0).collect();
        let out = verify_batch_with_fault(&items, &faults);
        // Bisection heals exactly the corrupted indices — no more, no
        // less — and the final verdicts equal the scalar ones (all true).
        prop_assert_eq!(&out.healed, &faults);
        prop_assert!(out.verdicts.iter().all(|v| *v));
        prop_assert!(out.invalid.is_empty());
    }
}

#[test]
fn mixed_group_batches_match_individual() {
    let sim = Group::simulation_256();
    let big = Group::rfc3526_1536();
    let sim_ca = KeyPair::from_seed(sim, b"batch-equiv-mixed-sim");
    let big_ca = KeyPair::from_seed(big, b"batch-equiv-mixed-big");
    let m1 = b"small-group message".to_vec();
    let m2 = b"big-group message".to_vec();
    let m3 = b"second small".to_vec();
    let s1 = sim_ca.private.sign(&m1);
    let mut s2 = big_ca.private.sign(&m2);
    let s3 = sim_ca.private.sign(&m3);
    s2.e[3] ^= 0x10; // forge the 1536-bit item
    let items: Vec<BatchItem<'_>> = vec![
        (&sim_ca.public, m1.as_slice(), &s1),
        (&big_ca.public, m2.as_slice(), &s2),
        (&sim_ca.public, m3.as_slice(), &s3),
    ];
    let out = verify_batch(&items);
    let individual: Vec<bool> = items.iter().map(|(k, m, s)| k.verify(m, s)).collect();
    assert_eq!(out.verdicts, individual);
    assert_eq!(out.verdicts, vec![true, false, true]);
    assert!(out.healed.is_empty());
}

#[test]
fn policy_overrides_keep_verdicts_and_gate_bisection() {
    // Sequential policy mutations (see module docs for why these stay in
    // one test): Off must bypass the batch machinery entirely; On must
    // run the aggregate even for a singleton.
    let group = Group::simulation_256();
    let ca = KeyPair::from_seed(group, b"batch-equiv-policy-ca");
    let messages: Vec<Vec<u8>> = (0..5u8).map(|i| vec![0x60 | i; 21]).collect();
    let mut sigs: Vec<Signature> = messages.iter().map(|m| ca.private.sign(m)).collect();
    sigs[3].e[5] ^= 0x04;
    let items: Vec<BatchItem<'_>> = messages
        .iter()
        .zip(&sigs)
        .map(|(m, s)| (&ca.public, m.as_slice(), s))
        .collect();
    let expected = vec![true, true, true, false, true];

    set_verify_batch_policy(BatchPolicy::Off);
    let off = verify_batch_with_fault(&items, &[1]);
    // Off is the pre-batching loop: identical verdicts, and the fault
    // hook has no arithmetic to corrupt.
    assert_eq!(off.verdicts, expected);
    assert!(off.healed.is_empty());

    set_verify_batch_policy(BatchPolicy::On);
    let on = verify_batch(&items[..1]);
    assert_eq!(on.verdicts, vec![true]);
    let on_faulted = verify_batch_with_fault(&items[..1], &[0]);
    // On runs the self-check even for one item, so the singleton heals.
    assert_eq!(on_faulted.verdicts, vec![true]);
    assert_eq!(on_faulted.healed, vec![0]);

    set_verify_batch_policy(BatchPolicy::Auto);
    let auto = verify_batch(&items);
    assert_eq!(auto.verdicts, expected);
}
