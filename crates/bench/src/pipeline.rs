//! Fused single-generation analysis pipeline.
//!
//! The paper's measurement loop runs *several* analyses over the same
//! corpus — structural compliance (§4), differential client construction
//! (§5), and the zlint-style lint pass — but each summary used to
//! regenerate every [`DomainObservation`] from scratch (DRBG draws,
//! certificate building, DER encoding, SHA-256 fingerprinting) once *per
//! analysis*. The pipeline sweeps the rank range **once**, generates each
//! observation a single time through a bounded per-worker
//! [`ObservationStore`], and fans the borrowed observation to every
//! registered [`AnalysisPass`].
//!
//! Contract (all three are load-bearing for the equivalence tests):
//!
//! 1. **Bit-identity** — `Pipeline::run` with a single pass produces
//!    exactly the same summary as the pass's legacy `compute_with_threads`
//!    entry point, for every thread count. Fusing passes never changes any
//!    result, because passes only *read* the shared observation and the
//!    shared [`IssuanceChecker`] cache is semantically transparent.
//! 2. **Thread invariance** — workers own rank-ordered chunks (the same
//!    `CCC_THREADS` chunk pattern as the legacy paths: sequential below
//!    256 domains, `div_ceil` chunks above) and partials merge in
//!    thread-index order, so results are identical for any worker count.
//! 3. **Memory bound** — a worker holds at most
//!    [`REUSE_WINDOW`]`.min(chunk)` observations at a time; whole-corpus
//!    memory is O(threads × window), never O(corpus).
//!
//! Adding a pass: implement [`AnalysisPass`] (see DESIGN.md §12 for the
//! contract), then hand it to [`Pipeline::run`] — tuples of passes are
//! themselves passes, so `(CompliancePass::new(), LintPass::new())` fuses
//! with no further plumbing.

use crate::{threads_from_env, CorpusSummary, DifferentialSummary};
use ccc_core::clients::{client_profiles, ClientKind};
use ccc_core::completeness::RootResolution;
use ccc_core::leaf::cert_covers_domain;
use ccc_core::report::{count_pct, render_cache_stats, render_phase_split, TextTable};
use ccc_core::topology::CacheStats;
use ccc_core::{
    analyze_compliance_with_graph, BuildContext, BuildOutcome, ChainEngine, Completeness,
    ComplianceReport, CompletenessAnalyzer, DifferentialHarness, IncompleteReason,
    IssuanceChecker, NonCompliance, TopologyGraph,
};
use ccc_lint::{LintEngine, LintSummary};
use ccc_netsim::{FaultPlan, FaultyTransport};
use ccc_rootstore::{RootProgram, RootStore};
use ccc_testgen::corpus::scan_time;
use ccc_testgen::{Corpus, DomainObservation, ObservationStore};
use ccc_x509::Certificate;
use std::cell::OnceCell;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Corpora below this many domains always run on one worker (matches the
/// legacy `compute_with_threads` threshold; spawning threads for tiny
/// corpora costs more than it saves and the tests straddle this value).
pub const PARALLEL_THRESHOLD: usize = 256;

/// Per-worker [`ObservationStore`] ring capacity. Each rank in a sweep is
/// visited exactly once, so the window only needs to cover the
/// currently-borrowed observation plus a little lookback slack; the
/// worker's resident set is `REUSE_WINDOW.min(chunk)` observations.
pub const REUSE_WINDOW: usize = 32;

/// Everything a pass may borrow for the duration of one pipeline run.
#[derive(Clone, Copy, Debug)]
pub struct PassContext<'c> {
    /// The corpus being swept.
    pub corpus: &'c Corpus,
    /// The shared sharded signature cache (one per run; every pass and
    /// every worker hits the same cache).
    pub checker: &'c IssuanceChecker,
}

/// Per-observation artifacts shared across fused passes, computed at most
/// once per observation per sweep.
///
/// The three corpus analyses all start from the same two derived values —
/// the issuance [`TopologyGraph`] over the served list and the aggregate
/// [`ComplianceReport`] — so the pipeline hands every
/// [`AnalysisPass::visit`] call a fresh memo and the *first* pass to need
/// an artifact computes it for all of them. Equality is structural: every
/// pass builds these with the same checker and the same unified-store
/// analyzer configuration, so sharing is bit-identical to recomputing
/// (the equivalence suite pins this).
///
/// Lives for exactly one observation; dropped before the next rank, so it
/// never grows the pipeline's O(window) memory bound.
#[derive(Debug, Default)]
pub struct ObservationMemo {
    graph: OnceCell<TopologyGraph>,
    report: OnceCell<ComplianceReport>,
}

impl ObservationMemo {
    /// The issuance topology graph over `obs.served` (built on first
    /// use).
    pub fn graph(&self, obs: &DomainObservation, checker: &IssuanceChecker) -> &TopologyGraph {
        self.graph
            .get_or_init(|| TopologyGraph::build(&obs.served, checker))
    }

    /// The aggregate compliance report for `obs` (computed on first use,
    /// against the memoized graph).
    pub fn report(
        &self,
        obs: &DomainObservation,
        checker: &IssuanceChecker,
        analyzer: &CompletenessAnalyzer<'_>,
    ) -> &ComplianceReport {
        // Written without `get_or_init` so the nested `self.graph(..)`
        // init (a *different* cell) stays out of an init closure.
        if self.report.get().is_none() {
            let graph = self.graph(obs, checker);
            let report = analyze_compliance_with_graph(&obs.domain, &obs.served, graph, analyzer);
            let _ = self.report.set(report);
        }
        self.report.get().expect("initialized above")
    }
}

/// One analysis over a stream of observations.
///
/// Lifecycle: the caller constructs a *root* pass (plain accumulator, no
/// borrowed analyzers). For each worker chunk the pipeline calls
/// [`begin`](Self::begin) to fork a fresh worker-local pass (this is where
/// analyzers borrowing from the [`PassContext`] are built), feeds it every
/// observation in its rank range via [`visit`](Self::visit), then folds
/// finished workers back into the root with [`merge`](Self::merge) **in
/// rank order**. [`finish`](Self::finish) runs once on the root after the
/// last merge.
pub trait AnalysisPass<'c>: Send + Sized {
    /// Short label for metrics lines.
    fn name(&self) -> &'static str;

    /// Fork a fresh worker-local pass: empty accumulators, analyzers
    /// wired to `ctx`.
    fn begin(&self, ctx: PassContext<'c>) -> Self;

    /// Fold one observation into this worker's accumulator. Observations
    /// arrive in strictly increasing rank order within a worker. `memo`
    /// carries the per-observation artifacts (topology graph, compliance
    /// report) shared by every fused pass — prefer its accessors over
    /// recomputing.
    fn visit(&mut self, obs: &DomainObservation, memo: &ObservationMemo);

    /// Fold a finished worker into `self`. Workers are merged in
    /// rank-chunk order, so order-sensitive state (first-example maps,
    /// finding lists) stays deterministic.
    fn merge(&mut self, other: Self);

    /// Hook that runs once on the root pass after all workers merged.
    fn finish(&mut self, ctx: PassContext<'c>) {
        let _ = ctx;
    }

    /// How many leaf passes this value fans out to (tuples sum their
    /// members; used for the "consumed by N passes" metric).
    fn pass_count(&self) -> usize {
        1
    }
}

macro_rules! impl_pass_for_tuple {
    ($($p:ident . $idx:tt),+) => {
        impl<'c, $($p: AnalysisPass<'c>),+> AnalysisPass<'c> for ($($p,)+) {
            fn name(&self) -> &'static str {
                "fused"
            }
            fn begin(&self, ctx: PassContext<'c>) -> Self {
                ($(self.$idx.begin(ctx),)+)
            }
            fn visit(&mut self, obs: &DomainObservation, memo: &ObservationMemo) {
                $(self.$idx.visit(obs, memo);)+
            }
            fn merge(&mut self, other: Self) {
                $(self.$idx.merge(other.$idx);)+
            }
            fn finish(&mut self, ctx: PassContext<'c>) {
                $(self.$idx.finish(ctx);)+
            }
            fn pass_count(&self) -> usize {
                0 $(+ self.$idx.pass_count())+
            }
        }
    };
}

impl_pass_for_tuple!(A.0, B.1);
impl_pass_for_tuple!(A.0, B.1, C.2);
impl_pass_for_tuple!(A.0, B.1, C.2, D.3);

/// Per-phase accounting for one [`Pipeline::run`].
#[derive(Clone, Debug)]
pub struct PipelineStats {
    /// Observations generated (each exactly once).
    pub observations: usize,
    /// Leaf passes the stream fanned out to.
    pub passes: usize,
    /// Worker count the sweep actually used.
    pub threads: usize,
    /// Time spent generating observations, summed across workers (CPU
    /// time, so it can exceed `wall` on multi-core sweeps).
    pub generation: Duration,
    /// Time spent inside `visit`, summed across workers.
    pub analysis: Duration,
    /// End-to-end wall time of the sweep.
    pub wall: Duration,
    /// Signature-cache counter delta over the run (hits scored by any
    /// pass count here — fused runs show the cross-pass savings).
    pub cache: CacheStats,
}

impl PipelineStats {
    /// Multi-line human rendering: the generation/analysis split plus the
    /// cache-stat delta, in `render_cache_stats` style.
    pub fn render(&self) -> String {
        format!(
            "{}\n{}",
            render_phase_split(self.generation, self.analysis, self.observations, self.passes),
            render_cache_stats(&self.cache)
        )
    }
}

/// `ccc-obs` registry handles for the pipeline-phase metrics, recorded
/// once per [`Pipeline::run`]. Observation/pass totals are stable (fixed
/// by the workload); the phase durations and worker gauge are wall-clock
/// and scheduling artifacts, so they register volatile.
struct PipelineMetrics {
    runs: &'static ccc_obs::Counter,
    observations: &'static ccc_obs::Counter,
    passes: &'static ccc_obs::Counter,
    threads: &'static ccc_obs::Gauge,
    generation_us: &'static ccc_obs::Counter,
    analysis_us: &'static ccc_obs::Counter,
    wall_us: &'static ccc_obs::Counter,
}

fn pipeline_metrics() -> &'static PipelineMetrics {
    static METRICS: ccc_mc::OnceLock<PipelineMetrics> = ccc_mc::OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = ccc_obs::MetricsRegistry::global();
        PipelineMetrics {
            runs: reg.counter("ccc_pipeline_runs_total", "Fused pipeline sweeps executed."),
            observations: reg.counter(
                "ccc_pipeline_observations_total",
                "Observations generated across all sweeps (each exactly once per sweep).",
            ),
            passes: reg.counter(
                "ccc_pipeline_passes_total",
                "Leaf analysis passes fanned out to, summed over sweeps.",
            ),
            threads: reg.gauge_volatile(
                "ccc_pipeline_threads",
                "Worker count of the most recent sweep (volatile).",
            ),
            generation_us: reg.counter_volatile(
                "ccc_pipeline_generation_us_total",
                "Observation-generation CPU microseconds, summed across workers (volatile).",
            ),
            analysis_us: reg.counter_volatile(
                "ccc_pipeline_analysis_us_total",
                "Pass-visit CPU microseconds, summed across workers (volatile).",
            ),
            wall_us: reg.counter_volatile(
                "ccc_pipeline_wall_us_total",
                "End-to-end sweep wall microseconds (volatile).",
            ),
        }
    })
}

/// Force the pipeline metric families to register (so an exposition dump
/// covers them even before any sweep ran).
pub fn touch_pipeline_metrics() {
    let _ = pipeline_metrics();
}

fn duration_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// Publish one finished sweep's phase split to the process-global
/// registry (the same numbers `PipelineStats::render` prints).
fn record_pipeline_stats(stats: &PipelineStats) {
    let m = pipeline_metrics();
    m.runs.inc();
    m.observations.add(stats.observations as u64);
    m.passes.add(stats.passes as u64);
    m.threads.set(stats.threads as u64);
    m.generation_us.add(duration_us(stats.generation));
    m.analysis_us.add(duration_us(stats.analysis));
    m.wall_us.add(duration_us(stats.wall));
}

/// The fused sweep executor. Construct with an explicit worker count
/// ([`Pipeline::new`]) or from `CCC_THREADS` ([`Pipeline::from_env`]).
#[derive(Clone, Copy, Debug)]
pub struct Pipeline {
    threads: usize,
}

impl Pipeline {
    /// A pipeline with an explicit worker count (values ≤ 1 run the
    /// sweep on the calling thread).
    pub fn new(threads: usize) -> Pipeline {
        Pipeline { threads }
    }

    /// Worker count from `CCC_THREADS` (else detected cores, capped at
    /// 16) — the same resolution every legacy `compute_with_checker`
    /// entry point uses.
    pub fn from_env() -> Pipeline {
        Pipeline::new(threads_from_env())
    }

    /// The worker count this pipeline will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Sweep the whole corpus once, generating each observation a single
    /// time and fanning it to every pass in `root`. Returns the merged
    /// root pass and the per-phase stats.
    pub fn run<'c, P: AnalysisPass<'c>>(
        &self,
        corpus: &'c Corpus,
        checker: &'c IssuanceChecker,
        mut root: P,
    ) -> (P, PipelineStats) {
        let domains = corpus.spec.domains;
        let ctx = PassContext { corpus, checker };
        let cache_before = checker.snapshot_stats();
        let _span = ccc_obs::span!("pipeline.run");
        let wall_start = Instant::now();
        let mut generation = Duration::ZERO;
        let mut analysis = Duration::ZERO;
        let threads = if self.threads <= 1 || domains < PARALLEL_THRESHOLD {
            let worker = root.begin(ctx);
            let (worker, g, a) = run_chunk(ctx, worker, 0, domains);
            root.merge(worker);
            generation += g;
            analysis += a;
            1
        } else {
            let chunk = domains.div_ceil(self.threads);
            // ccc_mc::scope is std::thread::scope in normal builds; the
            // shim keeps ci/check_raw_sync.sh's raw-primitive ban
            // satisfied for this wired crate.
            let workers: Vec<(P, Duration, Duration)> = ccc_mc::scope(|scope| {
                let handles: Vec<_> = (0..self.threads)
                    .map(|t| {
                        // Clamped chunk edges: ranges partition
                        // 0..domains even when threads does not divide
                        // evenly (trailing workers may own empty ranges).
                        let start = (t * chunk).min(domains);
                        let end = ((t + 1) * chunk).min(domains);
                        let worker = root.begin(ctx);
                        scope.spawn(move || run_chunk(ctx, worker, start, end))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("pipeline worker panicked"))
                    .collect()
            });
            // Rank-order merge: workers were spawned in chunk order.
            for (worker, g, a) in workers {
                root.merge(worker);
                generation += g;
                analysis += a;
            }
            self.threads
        };
        root.finish(ctx);
        let stats = PipelineStats {
            observations: domains,
            passes: root.pass_count(),
            threads,
            generation,
            analysis,
            wall: wall_start.elapsed(),
            cache: checker.snapshot_stats().since(&cache_before),
        };
        record_pipeline_stats(&stats);
        (root, stats)
    }
}

/// Run a forked worker pass over one rank range (the sequential kernel
/// the legacy `compute_range` entry points delegate to). Each observation
/// is generated once through a bounded [`ObservationStore`] and consumed
/// by reference.
pub fn run_range<'c, P: AnalysisPass<'c>>(
    corpus: &'c Corpus,
    checker: &'c IssuanceChecker,
    start: usize,
    end: usize,
    root: P,
) -> P {
    let ctx = PassContext { corpus, checker };
    let worker = root.begin(ctx);
    run_chunk(ctx, worker, start, end).0
}

fn run_chunk<'c, P: AnalysisPass<'c>>(
    ctx: PassContext<'c>,
    mut worker: P,
    start: usize,
    end: usize,
) -> (P, Duration, Duration) {
    if start >= end {
        // Empty rank range (zero-domain corpus, `start == end` range, or
        // a trailing worker past the clamped chunk edges): nothing to
        // generate, so return the untouched worker instead of allocating
        // a bogus 1-slot store for zero observations.
        return (worker, Duration::ZERO, Duration::ZERO);
    }
    let window = REUSE_WINDOW.min(end - start);
    let mut store = ObservationStore::new(ctx.corpus, window);
    let mut generation = Duration::ZERO;
    let mut analysis = Duration::ZERO;
    for rank in start..end {
        let gen_start = Instant::now();
        let obs = store.get(rank);
        let visit_start = Instant::now();
        // Deferred verification: warm the shared cache through one
        // `verify_batch` flush over this observation's issuance pairs
        // before the passes sweep it (a no-op under CCC_VERIFY_BATCH=off).
        // Timed as analysis — it replaces verifications the passes would
        // otherwise do one at a time.
        ctx.checker.prefetch_served(&obs.served);
        let memo = ObservationMemo::default();
        worker.visit(obs, &memo);
        generation += visit_start.duration_since(gen_start);
        analysis += visit_start.elapsed();
    }
    (worker, generation, analysis)
}

// ---------------------------------------------------------------------
// Pass implementations for the three corpus analyses.
// ---------------------------------------------------------------------

/// Worker-local analyzer set for the structural-compliance pass (built in
/// `begin`, absent on the root accumulator).
#[derive(Debug)]
struct ComplianceState<'c> {
    checker: &'c IssuanceChecker,
    analyzer: CompletenessAnalyzer<'c>,
    no_aia_analyzer: CompletenessAnalyzer<'c>,
    program_analyzers: Vec<(RootProgram, CompletenessAnalyzer<'c>, CompletenessAnalyzer<'c>)>,
}

/// [`AnalysisPass`] computing [`CorpusSummary`] (Tables 3, 5, 7, 8, 10,
/// 11): the structural §4 analyses.
#[derive(Debug, Default)]
pub struct CompliancePass<'c> {
    state: Option<ComplianceState<'c>>,
    /// The accumulated summary (complete once the pipeline returns).
    pub summary: CorpusSummary,
}

impl<'c> CompliancePass<'c> {
    /// A fresh root accumulator.
    pub fn new() -> CompliancePass<'c> {
        CompliancePass::default()
    }

    /// Consume the pass, yielding the summary.
    pub fn into_summary(self) -> CorpusSummary {
        self.summary
    }
}

impl<'c> AnalysisPass<'c> for CompliancePass<'c> {
    fn name(&self) -> &'static str {
        "compliance"
    }

    fn begin(&self, ctx: PassContext<'c>) -> Self {
        let corpus = ctx.corpus;
        let checker = ctx.checker;
        let analyzer =
            CompletenessAnalyzer::new(checker, corpus.programs.unified(), Some(&corpus.aia));
        let no_aia_analyzer = CompletenessAnalyzer::new(checker, corpus.programs.unified(), None);
        let program_analyzers: Vec<(RootProgram, CompletenessAnalyzer, CompletenessAnalyzer)> =
            RootProgram::ALL
                .iter()
                .map(|&p| {
                    (
                        p,
                        CompletenessAnalyzer::new(
                            checker,
                            corpus.programs.store(p),
                            Some(&corpus.aia),
                        ),
                        CompletenessAnalyzer::new(checker, corpus.programs.store(p), None),
                    )
                })
                .collect();
        CompliancePass {
            state: Some(ComplianceState {
                checker,
                analyzer,
                no_aia_analyzer,
                program_analyzers,
            }),
            summary: CorpusSummary::default(),
        }
    }

    fn visit(&mut self, obs: &DomainObservation, memo: &ObservationMemo) {
        let st = self
            .state
            .as_ref()
            .expect("visit is only called on forked workers");
        let s = &mut self.summary;
        s.total += 1;
        let report = memo.report(obs, st.checker, &st.analyzer);
        *s.placement.entry(report.leaf_placement).or_insert(0) += 1;
        *s.completeness
            .entry(report.completeness.completeness)
            .or_insert(0) += 1;
        s.longest_list = s.longest_list.max(obs.served.len());

        let order = &report.order;
        let mut any_order = false;
        if order.has_duplicates() {
            s.dup_chains += 1;
            any_order = true;
            if order.duplicates.leaf > 0 {
                s.dup_leaf_chains += 1;
            }
            if order.duplicates.intermediate > 0 {
                s.dup_intermediate_chains += 1;
            }
            if order.duplicates.root > 0 {
                s.dup_root_chains += 1;
            }
        }
        if order.has_irrelevant() {
            s.irrelevant_chains += 1;
            any_order = true;
        }
        if order.has_multiple_paths() {
            s.multipath_chains += 1;
            any_order = true;
        }
        if order.has_reversed() {
            s.reversed_chains += 1;
            any_order = true;
            if order.all_paths_reversed {
                s.all_paths_reversed_chains += 1;
            }
        }
        if any_order {
            s.order_noncompliant += 1;
        }
        if !report.is_compliant() {
            s.noncompliant += 1;
        }

        let comp = &report.completeness;
        if comp.completeness == Completeness::Incomplete {
            if comp.aia_completable {
                s.aia_completable += 1;
                if comp.missing_intermediates == 1 {
                    s.missing_single_intermediate += 1;
                }
            } else if let Some(reason) = comp.incomplete_reason {
                let label = match reason {
                    IncompleteReason::NoAiaField => "AIA field missing",
                    IncompleteReason::AiaUriDead => "AIA URI dead",
                    IncompleteReason::AiaWrongCertificate => "AIA served wrong certificate",
                    IncompleteReason::AiaChainNotTerminating => "AIA descent not terminating",
                };
                *s.incomplete_reasons.entry(label).or_insert(0) += 1;
            }
        }
        if let Some(RootResolution::AiaResolved { .. }) = comp.resolution {
            s.root_via_aia += 1;
        }

        // Table 8 passes.
        let graph = memo.graph(obs, st.checker);
        if !st.analyzer.client_complete(graph) {
            s.unified_incomplete_with_aia += 1;
        }
        if !st.no_aia_analyzer.client_complete(graph) {
            s.unified_incomplete_without_aia += 1;
        }
        for (program, with_aia, without_aia) in &st.program_analyzers {
            let entry = s.store_completeness.entry(*program).or_default();
            if !with_aia.client_complete(graph) {
                entry.incomplete_with_aia += 1;
            }
            if !without_aia.client_complete(graph) {
                entry.incomplete_without_aia += 1;
            }
        }

        // Tables 10/11 cross-tabs.
        let server_label = obs.server.display_name();
        let ca_label = obs.ca;
        for bucket in [
            s.by_server.entry(server_label).or_default(),
            s.by_ca.entry(ca_label).or_default(),
        ] {
            bucket.total += 1;
            if !report.is_compliant() {
                bucket.any += 1;
            }
            for finding in &report.findings {
                match finding {
                    NonCompliance::DuplicateCertificates => {
                        bucket.duplicates += 1;
                        if order.duplicates.leaf > 0 {
                            bucket.duplicate_leaf += 1;
                        }
                    }
                    NonCompliance::IrrelevantCertificates => bucket.irrelevant += 1,
                    NonCompliance::MultiplePaths => bucket.multipath += 1,
                    NonCompliance::ReversedSequence => bucket.reversed += 1,
                    NonCompliance::IncompleteChain => bucket.incomplete += 1,
                    NonCompliance::LeafMisplaced => {}
                }
            }
        }
    }

    fn merge(&mut self, other: Self) {
        self.summary.total += other.summary.total;
        self.summary.merge(other.summary);
    }
}

/// Worker-local state for the differential pass.
#[derive(Debug)]
struct DifferentialState<'c> {
    checker: &'c IssuanceChecker,
    analyzer: CompletenessAnalyzer<'c>,
    harness: DifferentialHarness<'c>,
}

/// [`AnalysisPass`] computing [`DifferentialSummary`] (§5.2, Tables 8–9):
/// all eight client engines over every observation.
#[derive(Debug, Default)]
pub struct DifferentialPass<'c> {
    state: Option<DifferentialState<'c>>,
    /// The accumulated summary.
    pub summary: DifferentialSummary,
}

impl<'c> DifferentialPass<'c> {
    /// A fresh root accumulator.
    pub fn new() -> DifferentialPass<'c> {
        DifferentialPass::default()
    }

    /// Consume the pass, yielding the summary.
    pub fn into_summary(self) -> DifferentialSummary {
        self.summary
    }
}

impl<'c> AnalysisPass<'c> for DifferentialPass<'c> {
    fn name(&self) -> &'static str {
        "differential"
    }

    fn begin(&self, ctx: PassContext<'c>) -> Self {
        let corpus = ctx.corpus;
        let checker = ctx.checker;
        let analyzer =
            CompletenessAnalyzer::new(checker, corpus.programs.unified(), Some(&corpus.aia));
        let harness = DifferentialHarness::new(
            corpus.programs.unified(),
            Some(&corpus.aia),
            corpus.intermediate_cache(),
            scan_time(),
            checker,
        );
        DifferentialPass {
            state: Some(DifferentialState {
                checker,
                analyzer,
                harness,
            }),
            summary: DifferentialSummary::default(),
        }
    }

    fn visit(&mut self, obs: &DomainObservation, memo: &ObservationMemo) {
        let st = self
            .state
            .as_ref()
            .expect("visit is only called on forked workers");
        let s = &mut self.summary;
        s.corpus_total += 1;
        let compliance = memo.report(obs, st.checker, &st.analyzer);
        // Domain-aware run: hostname mismatches count as failures in
        // every client (the paper's availability numbers include
        // domain-mismatch and date errors, not just chain building).
        let result = st.harness.run_for_domain(&obs.served, &obs.domain);
        let lib_fail = result
            .outcomes
            .iter()
            .any(|(k, o)| !k.is_browser() && !o.accepted());
        let browser_fail = result
            .outcomes
            .iter()
            .any(|(k, o)| k.is_browser() && !o.accepted());
        if lib_fail {
            s.corpus_library_failures += 1;
        }
        if browser_fail {
            s.corpus_browser_failures += 1;
        }
        if compliance.is_compliant() {
            return;
        }
        for cause in &result.causes {
            s.cause_examples
                .entry(*cause)
                .or_insert_with(|| obs.domain.clone());
        }
        s.report.absorb(&result);
    }

    fn merge(&mut self, other: Self) {
        self.summary.corpus_total += other.summary.corpus_total;
        self.summary.merge(other.summary);
    }
}

/// [`AnalysisPass`] computing [`LintSummary`]: the full rule registry plus
/// the "non-compliant ⇔ ≥1 error finding" cross-check per chain.
///
/// Lives here (not in `ccc-lint`) because the pipeline is a `ccc-bench`
/// facility and `ccc-bench` already depends on `ccc-lint`; the pass is a
/// thin adapter over the public [`LintEngine`] /
/// [`LintSummary::absorb_chain`] API, and the equivalence suite pins it
/// bit-identical to `LintSummary::compute_with_threads`.
#[derive(Debug, Default)]
pub struct LintPass<'c> {
    engine: Option<LintEngine<'c>>,
    /// The accumulated summary.
    pub summary: LintSummary,
}

impl<'c> LintPass<'c> {
    /// A fresh root accumulator.
    pub fn new() -> LintPass<'c> {
        LintPass::default()
    }

    /// Consume the pass, yielding the summary.
    pub fn into_summary(self) -> LintSummary {
        self.summary
    }
}

impl<'c> AnalysisPass<'c> for LintPass<'c> {
    fn name(&self) -> &'static str {
        "lint"
    }

    fn begin(&self, ctx: PassContext<'c>) -> Self {
        LintPass {
            engine: Some(LintEngine::new(
                ctx.checker,
                ctx.corpus.programs.unified(),
                Some(&ctx.corpus.aia),
                scan_time(),
            )),
            summary: LintSummary::default(),
        }
    }

    fn visit(&mut self, obs: &DomainObservation, memo: &ObservationMemo) {
        let engine = self
            .engine
            .as_ref()
            .expect("visit is only called on forked workers");
        let graph = memo.graph(obs, engine.checker());
        let report = memo.report(obs, engine.checker(), engine.analyzer());
        let findings = engine.lint_prepared(&obs.domain, &obs.served, graph, report);
        self.summary.total += 1;
        self.summary.absorb_chain(&obs.domain, report, findings);
    }

    fn merge(&mut self, other: Self) {
        self.summary.merge(other.summary);
    }
}

// ---------------------------------------------------------------------
// Fault-injection (chaos) pass: I-4 availability as fault rate × retry
// policy across the eight client profiles.
// ---------------------------------------------------------------------

/// One fault-injection scenario in a chaos sweep: a display label, the
/// overall fault rate, and the concrete seeded [`FaultPlan`].
#[derive(Clone, Debug, PartialEq)]
pub struct FaultScenario {
    /// Row label in the chaos table.
    pub label: String,
    /// Overall AIA fault rate the plan was built with.
    pub fault_rate: f64,
    /// The seeded plan (fetch outcomes are a pure function of the plan
    /// seed, the URI, and the attempt number — never of thread timing).
    pub plan: FaultPlan,
}

impl FaultScenario {
    /// A scenario over the corpus's own seed at an explicit rate.
    pub fn for_corpus(corpus: &Corpus, fault_rate: f64) -> FaultScenario {
        FaultScenario {
            label: if fault_rate <= 0.0 {
                "baseline".to_string()
            } else {
                format!("fault {:.0}%", fault_rate * 100.0)
            },
            fault_rate,
            plan: corpus.fault_plan_with_rate(fault_rate),
        }
    }

    /// The standard chaos sweep: zero-fault baseline, moderate, and heavy
    /// fault rates over one corpus seed.
    pub fn standard_sweep(corpus: &Corpus) -> Vec<FaultScenario> {
        [0.0, 0.1, 0.3]
            .iter()
            .map(|&rate| FaultScenario::for_corpus(corpus, rate))
            .collect()
    }
}

/// Per-(scenario, client) chaos counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChaosClientCell {
    /// Chains this client accepted (including the hostname check, like
    /// the differential availability numbers).
    pub passes: usize,
    /// Accepted chains whose build needed at least one AIA retry — chains
    /// a non-retrying profile would have lost to the same fault plan.
    pub recovered: usize,
    /// Sum of [`ccc_core::BuildStats::aia_attempts`].
    pub aia_attempts: usize,
    /// Sum of [`ccc_core::BuildStats::aia_fetches`].
    pub aia_fetches: usize,
    /// Sum of [`ccc_core::BuildStats::aia_retries`].
    pub aia_retries: usize,
    /// Builds whose retry budget ran out.
    pub budget_exhausted: usize,
    /// Total simulated milliseconds spent on AIA latency + backoff.
    pub sim_latency_ms: u64,
}

impl ChaosClientCell {
    fn absorb(&mut self, outcome: &BuildOutcome, covers_domain: bool) {
        let pass = outcome.accepted() && covers_domain;
        if pass {
            self.passes += 1;
            if outcome.stats.aia_retries > 0 {
                self.recovered += 1;
            }
        }
        self.aia_attempts += outcome.stats.aia_attempts;
        self.aia_fetches += outcome.stats.aia_fetches;
        self.aia_retries += outcome.stats.aia_retries;
        if outcome.stats.aia_budget_exhausted {
            self.budget_exhausted += 1;
        }
        self.sim_latency_ms += outcome.stats.sim_latency_ms;
    }

    fn merge(&mut self, other: ChaosClientCell) {
        self.passes += other.passes;
        self.recovered += other.recovered;
        self.aia_attempts += other.aia_attempts;
        self.aia_fetches += other.aia_fetches;
        self.aia_retries += other.aia_retries;
        self.budget_exhausted += other.budget_exhausted;
        self.sim_latency_ms += other.sim_latency_ms;
    }
}

/// Chaos counters for one scenario across all eight clients.
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosScenarioSummary {
    /// Scenario label.
    pub label: String,
    /// The scenario's overall fault rate.
    pub fault_rate: f64,
    /// Per-client counters (Table 9 client order via `ClientKind::ALL`).
    pub per_client: BTreeMap<ClientKind, ChaosClientCell>,
}

/// The chaos sweep result: per-scenario, per-client availability under
/// deterministic fault injection.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ChaosSummary {
    /// Observations swept (identical for every scenario).
    pub total: usize,
    /// One entry per [`FaultScenario`], in scenario order.
    pub scenarios: Vec<ChaosScenarioSummary>,
}

impl ChaosSummary {
    fn empty_for(scenarios: &[FaultScenario]) -> ChaosSummary {
        ChaosSummary {
            total: 0,
            scenarios: scenarios
                .iter()
                .map(|sc| ChaosScenarioSummary {
                    label: sc.label.clone(),
                    fault_rate: sc.fault_rate,
                    per_client: ClientKind::ALL
                        .iter()
                        .map(|&k| (k, ChaosClientCell::default()))
                        .collect(),
                })
                .collect(),
        }
    }

    /// Fold another (worker) summary into this one.
    pub fn merge(&mut self, other: ChaosSummary) {
        if self.scenarios.is_empty() {
            *self = other;
            return;
        }
        assert_eq!(self.scenarios.len(), other.scenarios.len());
        self.total += other.total;
        for (mine, theirs) in self.scenarios.iter_mut().zip(other.scenarios) {
            for (kind, cell) in theirs.per_client {
                mine.per_client.entry(kind).or_default().merge(cell);
            }
        }
    }

    /// Render the I-4 availability table (one row per scenario × client).
    pub fn render_table(&self) -> String {
        let mut table = TextTable::new(
            format!(
                "I-4 availability under deterministic fault injection ({} chains)",
                self.total
            ),
            &[
                "scenario", "client", "pass", "recovered", "attempts", "fetches",
                "retries", "budget out", "sim ms",
            ],
        );
        for scenario in &self.scenarios {
            for kind in ClientKind::ALL {
                let cell = scenario.per_client.get(&kind).copied().unwrap_or_default();
                table.row(&[
                    format!("{} (r={:.2})", scenario.label, scenario.fault_rate),
                    kind.name().to_string(),
                    count_pct(cell.passes, self.total),
                    cell.recovered.to_string(),
                    cell.aia_attempts.to_string(),
                    cell.aia_fetches.to_string(),
                    cell.aia_retries.to_string(),
                    cell.budget_exhausted.to_string(),
                    cell.sim_latency_ms.to_string(),
                ]);
            }
        }
        table.render()
    }
}

/// Worker-local state for the fault pass: one [`FaultyTransport`] per
/// scenario (all wrapping the corpus's AIA repository) plus the eight
/// client engines.
#[derive(Debug)]
struct FaultState<'c> {
    checker: &'c IssuanceChecker,
    store: &'c RootStore,
    cache: Vec<Certificate>,
    transports: Vec<FaultyTransport<'c>>,
    clients: Vec<(ClientKind, ChainEngine)>,
}

/// [`AnalysisPass`] sweeping every observation through every
/// (fault scenario × client profile) pair.
///
/// Determinism: each fetch outcome is a pure function of the scenario's
/// plan seed, the URI, and the attempt number, and retry backoff runs on
/// the per-build simulated clock, so the accumulated [`ChaosSummary`] is
/// bit-identical for any `CCC_THREADS` worker count (the cells are sums
/// over per-observation values, merged in rank order).
#[derive(Debug, Default)]
pub struct FaultPass<'c> {
    scenarios: Vec<FaultScenario>,
    state: Option<FaultState<'c>>,
    /// The accumulated chaos summary.
    pub summary: ChaosSummary,
}

impl<'c> FaultPass<'c> {
    /// A fresh root accumulator over the given scenarios.
    pub fn new(scenarios: Vec<FaultScenario>) -> FaultPass<'c> {
        let summary = ChaosSummary::empty_for(&scenarios);
        FaultPass {
            scenarios,
            state: None,
            summary,
        }
    }

    /// Consume the pass, yielding the summary.
    pub fn into_summary(self) -> ChaosSummary {
        self.summary
    }
}

impl<'c> AnalysisPass<'c> for FaultPass<'c> {
    fn name(&self) -> &'static str {
        "fault"
    }

    fn begin(&self, ctx: PassContext<'c>) -> Self {
        let transports = self
            .scenarios
            .iter()
            .map(|sc| FaultyTransport::new(&ctx.corpus.aia, sc.plan.clone()))
            .collect();
        FaultPass {
            scenarios: self.scenarios.clone(),
            state: Some(FaultState {
                checker: ctx.checker,
                store: ctx.corpus.programs.unified(),
                cache: ctx.corpus.intermediate_cache(),
                transports,
                clients: client_profiles(),
            }),
            summary: ChaosSummary::empty_for(&self.scenarios),
        }
    }

    fn visit(&mut self, obs: &DomainObservation, _memo: &ObservationMemo) {
        let st = self
            .state
            .as_ref()
            .expect("visit is only called on forked workers");
        self.summary.total += 1;
        let covers = obs
            .served
            .first()
            .map(|leaf| cert_covers_domain(leaf, &obs.domain))
            .unwrap_or(false);
        for (scenario, transport) in self.summary.scenarios.iter_mut().zip(&st.transports) {
            let ctx = BuildContext {
                store: st.store,
                aia: Some(transport),
                cache: &st.cache,
                now: scan_time(),
                checker: st.checker,
            };
            for (kind, engine) in &st.clients {
                let outcome = engine.process(&obs.served, &ctx);
                scenario
                    .per_client
                    .get_mut(kind)
                    .expect("prefilled for all clients")
                    .absorb(&outcome, covers);
            }
        }
    }

    fn merge(&mut self, other: Self) {
        self.summary.merge(other.summary);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan_corpus;

    #[test]
    fn fused_tuple_matches_standalone_passes() {
        let corpus = scan_corpus(120);
        let fused_checker = IssuanceChecker::new();
        let ((compliance, lint), stats) = Pipeline::new(1).run(
            &corpus,
            &fused_checker,
            (CompliancePass::new(), LintPass::new()),
        );
        assert_eq!(stats.observations, 120);
        assert_eq!(stats.passes, 2);
        assert_eq!(stats.threads, 1);

        let checker = IssuanceChecker::new();
        assert_eq!(
            compliance.into_summary(),
            CorpusSummary::compute_with_threads(&corpus, &checker, 1)
        );
        let checker = IssuanceChecker::new();
        assert_eq!(
            lint.into_summary(),
            LintSummary::compute_with_threads(&corpus, &checker, 1)
        );
    }

    #[test]
    fn pipeline_stats_render_mentions_phases_and_cache() {
        let corpus = scan_corpus(40);
        let checker = IssuanceChecker::new();
        let (_pass, stats) = Pipeline::new(1).run(&corpus, &checker, CompliancePass::new());
        let text = stats.render();
        assert!(text.contains("generated once"), "{text}");
        assert!(text.contains("signature cache"), "{text}");
        assert!(text.contains("generation"), "{text}");
        assert!(text.contains("analysis"), "{text}");
    }

    #[test]
    fn zero_domain_corpus_runs_without_allocating_a_store() {
        // Regression: `run_chunk` used to clamp the reuse window with
        // `end.saturating_sub(start).max(1)`, silently allocating a
        // 1-slot ObservationStore for an empty rank range. The empty
        // sweep must short-circuit and still agree with the standalone
        // compute paths on an empty corpus.
        let corpus = scan_corpus(0);
        let checker = IssuanceChecker::new();
        let ((compliance, lint), stats) = Pipeline::new(1).run(
            &corpus,
            &checker,
            (CompliancePass::new(), LintPass::new()),
        );
        assert_eq!(stats.observations, 0);
        assert_eq!(stats.cache.lookups, 0, "empty sweep touched the cache");

        let solo = IssuanceChecker::new();
        assert_eq!(
            compliance.into_summary(),
            CorpusSummary::compute_with_threads(&corpus, &solo, 1)
        );
        let solo = IssuanceChecker::new();
        assert_eq!(
            lint.into_summary(),
            LintSummary::compute_with_threads(&corpus, &solo, 1)
        );
    }

    #[test]
    fn empty_rank_range_matches_full_range_merge() {
        // `run_range` with `start == end` must be a strict no-op whose
        // merge contributes nothing: [0,n) == [0,k) + [k,k) + [k,n).
        let corpus = scan_corpus(24);
        let checker = IssuanceChecker::new();
        let full = run_range(&corpus, &checker, 0, 24, CompliancePass::new());

        let checker = IssuanceChecker::new();
        let mut lo = run_range(&corpus, &checker, 0, 12, CompliancePass::new());
        let empty = run_range(&corpus, &checker, 12, 12, CompliancePass::new());
        let hi = run_range(&corpus, &checker, 12, 24, CompliancePass::new());
        lo.merge(empty);
        lo.merge(hi);
        assert_eq!(full.into_summary(), lo.into_summary());
    }

    #[test]
    fn fused_run_saves_signature_verifications() {
        // A fused (compliance, lint) sweep shares one checker, so the
        // lint pass's topology rebuilds are all cache hits: verifications
        // in the fused run must be no more than a compliance-only run.
        let corpus = scan_corpus(80);
        let fused = IssuanceChecker::new();
        let _ = Pipeline::new(1).run(&corpus, &fused, (CompliancePass::new(), LintPass::new()));
        let solo = IssuanceChecker::new();
        let _ = Pipeline::new(1).run(&corpus, &solo, CompliancePass::new());
        let fused_stats = fused.snapshot_stats();
        let solo_stats = solo.snapshot_stats();
        assert_eq!(fused_stats.verifications, solo_stats.verifications);
        assert!(fused_stats.hits > solo_stats.hits);
    }
}
