//! Experiment harness shared by the table/figure regeneration binaries.
//!
//! Every `table*`/`figure*`/`section52` binary drives a single streaming
//! pass over a calibrated corpus ([`CorpusSummary::compute`]) and prints
//! its slice of the accumulated statistics next to the paper's published
//! values, so "shape" comparisons are one `cargo run` away.
//!
//! All corpus sweeps run on the fused [`pipeline`]: observations are
//! generated exactly once per sweep and fanned to every registered
//! [`AnalysisPass`], so running the structural, differential, and lint
//! analyses together costs one generation pass, not three (see
//! DESIGN.md §12 and `benches/pipeline.rs`).
//!
//! Scale control: binaries default to 100,000 domains; set `CCC_DOMAINS`
//! (or pass the count as the first CLI argument) to change it. The paper's
//! absolute counts are for 906,336 chains; percentages are the comparable
//! quantity.
//!
//! Thread control: worker count defaults to `available_parallelism`
//! (capped at 16); set `CCC_THREADS` to pin it — e.g. `CCC_THREADS=1` for
//! a deterministic single-threaded profile run, or a higher value on wide
//! machines. Results are bit-identical for every thread count (partial
//! summaries merge associatively).
//!
//! Batched verification control: `CCC_VERIFY_BATCH=on|off|auto` (default
//! `auto`) mirrors `CCC_VERIFY_TABLES`. Under `auto`/`on` each pipeline
//! worker warms the shared signature cache one observation ahead through
//! a single `verify_batch` flush (Pippenger multi-exponentiation over the
//! observation's issuance pairs, see DESIGN.md §16); `off` restores the
//! one-verification-per-miss behavior verbatim. Like the table policy it
//! is pure performance: verdicts — and therefore every summary and table —
//! are bit-identical in all three modes (pinned by
//! `tests/pipeline_equivalence.rs`).

use ccc_core::clients::ClientKind;
use ccc_core::{
    Completeness, DifferentialReport, DiscrepancyCause, IssuanceChecker, LeafPlacement,
};
use ccc_netsim::httpserver::HttpServerKind;
use ccc_rootstore::RootProgram;
use ccc_testgen::{Corpus, CorpusSpec};
use std::collections::BTreeMap;

pub mod pipeline;

pub use pipeline::{
    touch_pipeline_metrics, AnalysisPass, ChaosClientCell, ChaosScenarioSummary, ChaosSummary,
    CompliancePass, DifferentialPass, FaultPass, FaultScenario, LintPass, ObservationMemo,
    PassContext, Pipeline, PipelineStats,
};

/// Default corpus size for the regeneration binaries.
pub const DEFAULT_DOMAINS: usize = 100_000;

/// The corpus seed used by every regeneration binary (the "scan").
pub const SCAN_SEED: u64 = 833;

/// Resolve the worker-thread count: `CCC_THREADS` env > detected
/// parallelism (capped at 16). Values of 0 are treated as unset; the
/// summaries are bit-identical regardless of the choice.
pub fn threads_from_env() -> usize {
    if let Some(n) = std::env::var("CCC_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(16)
}

/// Resolve the corpus size: CLI arg > `CCC_DOMAINS` env > default.
pub fn domains_from_env() -> usize {
    if let Some(arg) = std::env::args().nth(1) {
        if let Ok(n) = arg.parse() {
            return n;
        }
    }
    std::env::var("CCC_DOMAINS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_DOMAINS)
}

/// Build the standard scan corpus.
pub fn scan_corpus(domains: usize) -> Corpus {
    Corpus::new(CorpusSpec::calibrated(SCAN_SEED, domains))
}

/// Per-(store, AIA) completeness tallies for Table 8.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StoreCompleteness {
    /// Chains NOT anchorable with AIA enabled.
    pub incomplete_with_aia: usize,
    /// Chains NOT anchorable without AIA.
    pub incomplete_without_aia: usize,
}

/// Cross-tab row used by Tables 10/11: counts per non-compliance type.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DefectCounts {
    /// Any non-compliance at all.
    pub any: usize,
    /// Duplicate certificates (plus leaf-only split).
    pub duplicates: usize,
    /// Duplicate leaf specifically.
    pub duplicate_leaf: usize,
    /// Irrelevant certificates.
    pub irrelevant: usize,
    /// Multiple paths.
    pub multipath: usize,
    /// Reversed sequences.
    pub reversed: usize,
    /// Incomplete chain.
    pub incomplete: usize,
    /// Total observations in this bucket (for rate columns).
    pub total: usize,
}

/// Everything a single streaming pass over the corpus accumulates.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CorpusSummary {
    /// Domains scanned.
    pub total: usize,
    /// Table 3.
    pub placement: BTreeMap<LeafPlacement, usize>,
    /// Table 5 rows.
    pub dup_chains: usize,
    /// Duplicate split: leaf/intermediate/root occurrences.
    pub dup_leaf_chains: usize,
    /// Chains with duplicated intermediates.
    pub dup_intermediate_chains: usize,
    /// Chains with duplicated roots.
    pub dup_root_chains: usize,
    /// Irrelevant-certificate chains.
    pub irrelevant_chains: usize,
    /// Multiple-path chains.
    pub multipath_chains: usize,
    /// Reversed-sequence chains.
    pub reversed_chains: usize,
    /// Chains where ALL paths are reversed.
    pub all_paths_reversed_chains: usize,
    /// Any order non-compliance.
    pub order_noncompliant: usize,
    /// Table 7.
    pub completeness: BTreeMap<Completeness, usize>,
    /// Incomplete chains recoverable via AIA.
    pub aia_completable: usize,
    /// Incomplete chains missing exactly one intermediate.
    pub missing_single_intermediate: usize,
    /// AIA failure reasons among non-recoverable incompletes.
    pub incomplete_reasons: BTreeMap<&'static str, usize>,
    /// Chains that located the omitted root via AIA rather than SKID.
    pub root_via_aia: usize,
    /// Overall non-compliant domains (order ∪ incomplete ∪ misplaced).
    pub noncompliant: usize,
    /// Table 8: per root program.
    pub store_completeness: BTreeMap<RootProgram, StoreCompleteness>,
    /// Unified-store baseline incompleteness (with AIA).
    pub unified_incomplete_with_aia: usize,
    /// Unified-store incompleteness without AIA.
    pub unified_incomplete_without_aia: usize,
    /// Table 10: per server bucket.
    pub by_server: BTreeMap<&'static str, DefectCounts>,
    /// Table 11: per CA bucket.
    pub by_ca: BTreeMap<&'static str, DefectCounts>,
    /// Longest served list seen.
    pub longest_list: usize,
}

impl CorpusSummary {
    /// One pass over `corpus`, parallelized across available cores (the
    /// corpus is rank-independent by construction; partial summaries are
    /// merged). All workers share one sharded [`IssuanceChecker`], so each
    /// (issuer, subject) signature is verified at most once per pass.
    pub fn compute(corpus: &Corpus) -> CorpusSummary {
        let checker = IssuanceChecker::new();
        Self::compute_with_checker(corpus, &checker)
    }

    /// [`compute`](Self::compute) against a caller-supplied shared checker
    /// (lets binaries reuse one cache across multiple passes and then read
    /// [`IssuanceChecker::snapshot_stats`]). Worker count comes from
    /// [`threads_from_env`] (`CCC_THREADS` override, else detected cores).
    pub fn compute_with_checker(corpus: &Corpus, checker: &IssuanceChecker) -> CorpusSummary {
        Self::compute_with_threads(corpus, checker, threads_from_env())
    }

    /// [`compute`](Self::compute) with an explicit worker count (testing
    /// hook: the result must be identical for every `threads` value).
    ///
    /// Thin wrapper over the fused pipeline with a single
    /// [`CompliancePass`] registered — callers that also need the
    /// differential or lint summaries should register those passes in the
    /// same [`Pipeline::run`] instead of paying a second generation sweep.
    pub fn compute_with_threads(
        corpus: &Corpus,
        checker: &IssuanceChecker,
        threads: usize,
    ) -> CorpusSummary {
        let (pass, _stats) = Pipeline::new(threads).run(corpus, checker, CompliancePass::new());
        pass.into_summary()
    }

    /// Fold a worker partial into this summary. `total` is intentionally
    /// NOT accumulated here (the pipeline pass tracks it per-visit);
    /// callers outside the pipeline must handle it themselves.
    pub(crate) fn merge(&mut self, other: CorpusSummary) {
        for (k, v) in other.placement {
            *self.placement.entry(k).or_insert(0) += v;
        }
        self.dup_chains += other.dup_chains;
        self.dup_leaf_chains += other.dup_leaf_chains;
        self.dup_intermediate_chains += other.dup_intermediate_chains;
        self.dup_root_chains += other.dup_root_chains;
        self.irrelevant_chains += other.irrelevant_chains;
        self.multipath_chains += other.multipath_chains;
        self.reversed_chains += other.reversed_chains;
        self.all_paths_reversed_chains += other.all_paths_reversed_chains;
        self.order_noncompliant += other.order_noncompliant;
        for (k, v) in other.completeness {
            *self.completeness.entry(k).or_insert(0) += v;
        }
        self.aia_completable += other.aia_completable;
        self.missing_single_intermediate += other.missing_single_intermediate;
        for (k, v) in other.incomplete_reasons {
            *self.incomplete_reasons.entry(k).or_insert(0) += v;
        }
        self.root_via_aia += other.root_via_aia;
        self.noncompliant += other.noncompliant;
        for (k, v) in other.store_completeness {
            let e = self.store_completeness.entry(k).or_default();
            e.incomplete_with_aia += v.incomplete_with_aia;
            e.incomplete_without_aia += v.incomplete_without_aia;
        }
        self.unified_incomplete_with_aia += other.unified_incomplete_with_aia;
        self.unified_incomplete_without_aia += other.unified_incomplete_without_aia;
        for (k, v) in other.by_server {
            let e = self.by_server.entry(k).or_default();
            e.any += v.any;
            e.duplicates += v.duplicates;
            e.duplicate_leaf += v.duplicate_leaf;
            e.irrelevant += v.irrelevant;
            e.multipath += v.multipath;
            e.reversed += v.reversed;
            e.incomplete += v.incomplete;
            e.total += v.total;
        }
        for (k, v) in other.by_ca {
            let e = self.by_ca.entry(k).or_default();
            e.any += v.any;
            e.duplicates += v.duplicates;
            e.duplicate_leaf += v.duplicate_leaf;
            e.irrelevant += v.irrelevant;
            e.multipath += v.multipath;
            e.reversed += v.reversed;
            e.incomplete += v.incomplete;
            e.total += v.total;
        }
        self.longest_list = self.longest_list.max(other.longest_list);
    }

    /// Sequential pass over a rank range against a shared checker (thin
    /// wrapper over [`pipeline::run_range`] with a [`CompliancePass`]).
    pub fn compute_range(
        corpus: &Corpus,
        checker: &IssuanceChecker,
        start: usize,
        end: usize,
    ) -> CorpusSummary {
        pipeline::run_range(corpus, checker, start, end, CompliancePass::new()).into_summary()
    }
}

/// Differential pass (the §5.2 harness over non-compliant chains plus
/// whole-corpus availability counts).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DifferentialSummary {
    /// Aggregate over the non-compliant subset.
    pub report: DifferentialReport,
    /// Chains in the whole corpus failing in ≥1 library.
    pub corpus_library_failures: usize,
    /// Chains in the whole corpus failing in ≥1 browser.
    pub corpus_browser_failures: usize,
    /// Whole corpus size.
    pub corpus_total: usize,
    /// Non-compliant chains whose discrepancy causes were attributed.
    pub cause_examples: BTreeMap<DiscrepancyCause, String>,
}

impl DifferentialSummary {
    /// Run the differential harness over the corpus (parallel over rank
    /// ranges, partials merged). Workers share one sharded
    /// [`IssuanceChecker`].
    pub fn compute(corpus: &Corpus) -> DifferentialSummary {
        let checker = IssuanceChecker::new();
        Self::compute_with_checker(corpus, &checker)
    }

    /// [`compute`](Self::compute) against a caller-supplied shared checker.
    /// Worker count comes from [`threads_from_env`] (`CCC_THREADS`
    /// override, else detected cores).
    pub fn compute_with_checker(
        corpus: &Corpus,
        checker: &IssuanceChecker,
    ) -> DifferentialSummary {
        Self::compute_with_threads(corpus, checker, threads_from_env())
    }

    /// [`compute`](Self::compute) with an explicit worker count.
    ///
    /// Thin wrapper over the fused pipeline with a single
    /// [`DifferentialPass`]; fuse with [`CompliancePass`]/[`LintPass`]
    /// via [`Pipeline::run`] when more than one summary is needed.
    pub fn compute_with_threads(
        corpus: &Corpus,
        checker: &IssuanceChecker,
        threads: usize,
    ) -> DifferentialSummary {
        let (pass, _stats) = Pipeline::new(threads).run(corpus, checker, DifferentialPass::new());
        pass.into_summary()
    }

    /// Fold a worker partial into this summary. `corpus_total` is
    /// intentionally NOT accumulated here (the pipeline pass tracks it
    /// per-visit).
    pub(crate) fn merge(&mut self, other: DifferentialSummary) {
        let r = &mut self.report;
        let o = other.report;
        r.total += o.total;
        r.all_browsers_pass += o.all_browsers_pass;
        r.all_libraries_pass += o.all_libraries_pass;
        r.browser_discrepancies += o.browser_discrepancies;
        r.library_discrepancies += o.library_discrepancies;
        r.library_failures += o.library_failures;
        r.browser_failures += o.browser_failures;
        for (k, v) in o.causes {
            *r.causes.entry(k).or_insert(0) += v;
        }
        for (k, v) in o.per_client_pass {
            *r.per_client_pass.entry(k).or_insert(0) += v;
        }
        self.corpus_library_failures += other.corpus_library_failures;
        self.corpus_browser_failures += other.corpus_browser_failures;
        for (k, v) in other.cause_examples {
            self.cause_examples.entry(k).or_insert(v);
        }
    }

    /// Sequential pass over a rank range against a shared checker (thin
    /// wrapper over [`pipeline::run_range`] with a [`DifferentialPass`]).
    pub fn compute_range(
        corpus: &Corpus,
        checker: &IssuanceChecker,
        start: usize,
        end: usize,
    ) -> DifferentialSummary {
        pipeline::run_range(corpus, checker, start, end, DifferentialPass::new()).into_summary()
    }
}

/// All eight client names in Table 9 order (for table headers).
pub fn client_names() -> Vec<&'static str> {
    ClientKind::ALL.iter().map(|k| k.name()).collect()
}

/// The server buckets in Table 10 column order.
pub fn server_columns() -> Vec<&'static str> {
    let mut seen = Vec::new();
    for kind in HttpServerKind::ALL {
        let label = kind.display_name();
        if !seen.contains(&label) {
            seen.push(label);
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_over_small_corpus_is_consistent() {
        let corpus = scan_corpus(500);
        let s = CorpusSummary::compute(&corpus);
        assert_eq!(s.total, 500);
        let placed: usize = s.placement.values().sum();
        assert_eq!(placed, 500);
        let complete: usize = s.completeness.values().sum();
        assert_eq!(complete, 500);
        // Non-compliance is a small minority.
        assert!(s.noncompliant < 50, "{}", s.noncompliant);
        // Table 8 monotonicity: no store does better without AIA.
        for sc in s.store_completeness.values() {
            assert!(sc.incomplete_without_aia >= sc.incomplete_with_aia);
        }
        assert!(s.unified_incomplete_without_aia >= s.unified_incomplete_with_aia);
        // Per-store incompleteness is at least the unified baseline.
        for sc in s.store_completeness.values() {
            assert!(sc.incomplete_with_aia >= s.unified_incomplete_with_aia);
        }
    }

    #[test]
    fn threads_env_override_is_honored_and_result_invariant() {
        // Env mutation is confined to this single test (no other test in
        // the crate reads CCC_THREADS).
        std::env::set_var("CCC_THREADS", "3");
        assert_eq!(threads_from_env(), 3);
        std::env::set_var("CCC_THREADS", "0"); // 0 = unset semantics
        assert!(threads_from_env() >= 1);
        std::env::set_var("CCC_THREADS", "nope"); // unparsable = unset
        assert!(threads_from_env() >= 1);
        std::env::remove_var("CCC_THREADS");
        assert!(threads_from_env() >= 1);

        // The summary must be bit-identical across worker counts.
        let corpus = scan_corpus(600);
        let checker = IssuanceChecker::new();
        let one = CorpusSummary::compute_with_threads(&corpus, &checker, 1);
        let four = CorpusSummary::compute_with_threads(&corpus, &checker, 4);
        assert_eq!(one, four);
    }

    #[test]
    fn differential_over_small_corpus() {
        let corpus = scan_corpus(400);
        let d = DifferentialSummary::compute(&corpus);
        assert_eq!(d.corpus_total, 400);
        assert!(d.corpus_library_failures >= d.report.library_failures);
        // Browsers fail no more often than libraries.
        assert!(d.corpus_browser_failures <= d.corpus_library_failures);
    }
}
