//! Regenerates paper Table 9: the client capability matrix, by running the
//! nine Table 2 test chains against all eight client profiles.
//!
//! `cargo run --release --bin table9`

use ccc_core::clients::ClientKind;
use ccc_core::report::{check, TextTable};
use ccc_testgen::{CapabilityRow, CapabilitySuite};

fn main() {
    let suite = CapabilitySuite::new(1);
    let rows: Vec<(ClientKind, CapabilityRow)> = ClientKind::ALL
        .iter()
        .map(|&k| {
            eprintln!("evaluating {}…", k.name());
            (k, suite.evaluate(&k.engine()))
        })
        .collect();

    let mut header = vec!["Type"];
    header.extend(ClientKind::ALL.iter().map(|k| k.name()));
    let mut table = TextTable::new("Table 9 — Capabilities of TLS implementations", &header);

    let push = |table: &mut TextTable, label: &str, f: &dyn Fn(&CapabilityRow) -> String| {
        let mut row = vec![label.to_string()];
        row.extend(rows.iter().map(|(_, r)| f(r)));
        table.row(&row);
    };
    push(&mut table, "Order Reorganization", &|r| check(r.order_reorganization).into());
    push(&mut table, "Redundancy Elimination", &|r| check(r.redundancy_elimination).into());
    push(&mut table, "AIA Completion", &|r| check(r.aia_completion).into());
    push(&mut table, "Validity Priority", &|r| r.validity_priority.label().into());
    push(&mut table, "KID Matching Priority", &|r| r.kid_priority.label().into());
    push(&mut table, "KeyUsage Correctness Priority", &|r| {
        if r.key_usage_priority { "KUP".into() } else { "-".into() }
    });
    push(&mut table, "Basic Constraints Priority", &|r| {
        if r.basic_constraints_priority { "BP".into() } else { "-".into() }
    });
    push(&mut table, "Path Length Constraint", &|r| r.max_path_len.label());
    push(&mut table, "Self-signed Leaf Certificate", &|r| check(r.self_signed_leaf).into());

    println!("{}", table.render());
    println!(
        "paper Table 9 values: reorganization x only for MbedTLS; AIA only CryptoAPI +\n\
         Chrome/Edge/Safari; VP1 OpenSSL/MbedTLS/Firefox, VP2 CryptoAPI + browsers;\n\
         KP1 OpenSSL/GnuTLS/Safari, KP2 CryptoAPI/Chrome/Edge; limits >52/=16/=10/=13/\n\
         >52/=21/>52/=8; self-signed leaf allowed only by MbedTLS and Safari."
    );
}
