//! Machine-readable snapshot of the modular-exponentiation stack.
//!
//! Times the three arithmetic paths (schoolbook `modpow_naive`, the
//! Montgomery fixed-window `MontgomeryCtx::modpow`, and the fixed-base
//! generator tables used for `g^k`) on both group presets and writes
//! `BENCH_modexp.json` (or the path given as the first CLI argument).
//!
//! The committed snapshot backs the perf table in README and the ≥5×
//! (1536-bit modexp) / ≥10× (fixed-base `g^k`) acceptance thresholds;
//! CI runs this binary in a smoke step to keep it from bit-rotting.
//! Set `CCC_SNAPSHOT_ITERS` to raise the per-path iteration count for a
//! lower-noise measurement.

use ccc_bignum::{modpow_naive, FixedBaseTable, MontgomeryCtx, Uint};
use ccc_crypto::{Drbg, Group};
use std::time::Instant;

struct PathTiming {
    name: &'static str,
    nanos_per_op: f64,
}

struct CaseResult {
    label: &'static str,
    modulus_bits: usize,
    exponent_bits: usize,
    iters: usize,
    paths: Vec<PathTiming>,
}

fn time_path(iters: usize, mut f: impl FnMut()) -> f64 {
    // One warmup round, then the measured rounds.
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn run_case(label: &'static str, group: &'static Group, iters: usize) -> CaseResult {
    let ctx = MontgomeryCtx::new(&group.p).expect("group prime is odd");
    let table = FixedBaseTable::new(&ctx, &group.g, group.q.bit_len());
    let mut drbg = Drbg::from_u64(0xbe9c_4a11);
    let exps: Vec<Uint> = (0..4)
        .map(|_| {
            Uint::from_bytes_be(&drbg.bytes(group.scalar_len))
                .rem(&group.q)
                .expect("q > 0")
        })
        .collect();

    // The three paths must agree bit-for-bit before we time them.
    for e in &exps {
        let naive = modpow_naive(&group.g, e, &group.p).expect("p is non-zero");
        assert_eq!(ctx.modpow(&group.g, e), naive, "{label}: montgomery drift");
        assert_eq!(table.pow(&ctx, e), naive, "{label}: fixed-base drift");
    }

    let per = |total: f64| total / exps.len() as f64;
    let naive = per(time_path(iters, || {
        for e in &exps {
            std::hint::black_box(modpow_naive(&group.g, e, &group.p).expect("p is non-zero"));
        }
    }));
    let montgomery = per(time_path(iters, || {
        for e in &exps {
            std::hint::black_box(ctx.modpow(&group.g, e));
        }
    }));
    let fixed_base = per(time_path(iters, || {
        for e in &exps {
            std::hint::black_box(table.pow(&ctx, e));
        }
    }));

    CaseResult {
        label,
        modulus_bits: group.p.bit_len(),
        exponent_bits: group.q.bit_len(),
        iters,
        paths: vec![
            PathTiming { name: "naive", nanos_per_op: naive },
            PathTiming { name: "montgomery_window4", nanos_per_op: montgomery },
            PathTiming { name: "fixed_base_table", nanos_per_op: fixed_base },
        ],
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_modexp.json".to_string());
    let iters: usize = std::env::var("CCC_SNAPSHOT_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(20);

    let results = [
        run_case("sim256", Group::simulation_256(), iters * 8),
        run_case("rfc3526_1536", Group::rfc3526_1536(), iters),
    ];

    let mut json = String::new();
    json.push_str("{\n  \"benchmark\": \"modexp\",\n  \"unit\": \"ns_per_op\",\n  \"cases\": [\n");
    for (i, r) in results.iter().enumerate() {
        let naive = r.paths[0].nanos_per_op;
        json.push_str(&format!(
            "    {{\n      \"label\": \"{}\",\n      \"modulus_bits\": {},\n      \"exponent_bits\": {},\n      \"iters\": {},\n      \"paths\": {{\n",
            r.label, r.modulus_bits, r.exponent_bits, r.iters
        ));
        for (j, p) in r.paths.iter().enumerate() {
            json.push_str(&format!(
                "        \"{}\": {{ \"ns_per_op\": {:.0}, \"speedup_vs_naive\": {:.2} }}{}\n",
                p.name,
                p.nanos_per_op,
                naive / p.nanos_per_op,
                if j + 1 < r.paths.len() { "," } else { "" }
            ));
        }
        json.push_str("      }\n    }");
        json.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write snapshot");

    for r in &results {
        let naive = r.paths[0].nanos_per_op;
        println!("{} ({}-bit modulus, {}-bit exponent):", r.label, r.modulus_bits, r.exponent_bits);
        for p in &r.paths {
            println!(
                "  {:<20} {:>12.0} ns/op   {:>6.2}x vs naive",
                p.name,
                p.nanos_per_op,
                naive / p.nanos_per_op
            );
        }
    }
    println!("wrote {out_path}");
}
