//! Machine-readable perf snapshots.
//!
//! Three cases:
//!
//! - **modexp**: times the three arithmetic paths (schoolbook
//!   `modpow_naive`, the Montgomery fixed-window `MontgomeryCtx::modpow`,
//!   and the fixed-base generator tables used for `g^k`) on both group
//!   presets → `BENCH_modexp.json`.
//! - **pipeline**: times the fused single-generation 3-analysis sweep
//!   (compliance + differential + lint, one shared checker) against
//!   three sequential standalone sweeps, each with a fresh checker, on a
//!   1k-domain corpus → `BENCH_pipeline.json`. The run first asserts the
//!   fused summaries are identical to the sequential ones.
//! - **verify**: times the three Schnorr verification routes (the legacy
//!   two-independent-pows baseline, the cold Straus joint multi-exp, the
//!   hot per-key fixed-base lookup) on both groups, then A/Bs a 1k-domain
//!   fused sweep under `TablePolicy::Never` vs `Always` →
//!   `BENCH_verify.json`. Routes are cross-checked for verdict agreement
//!   before any timing.
//!
//! - **batch**: times `verify_batch` per signature across batch sizes
//!   {1, 4, 16, 64, 256} next to freshly measured hot/cold per-signature
//!   routes on both groups, then A/Bs a 1k-domain fused sweep with
//!   `CCC_VERIFY_BATCH` effectively on vs off → `BENCH_batch.json`.
//!   Batch verdicts are cross-checked against sequential `verify` before
//!   any timing, and the on/off sweeps must produce identical summaries.
//!
//! ```text
//! perf_snapshot                       all cases, default output paths
//! perf_snapshot <path>                modexp only (CI compat)
//! perf_snapshot --pipeline <path>     pipeline only
//! perf_snapshot --verify <path>       verify only
//! perf_snapshot --batch <path>        batch only
//! ```
//!
//! The committed snapshots back the perf tables in README and the
//! acceptance thresholds (≥5× 1536-bit modexp, ≥10× fixed-base `g^k`,
//! ≥2.5× fused 3-analysis sweep, ≥2× hot verify route); CI runs this
//! binary in smoke steps to keep them from bit-rotting. Set
//! `CCC_SNAPSHOT_ITERS` to raise the iteration count for a lower-noise
//! measurement.

use ccc_bench::{
    CompliancePass, CorpusSummary, DifferentialPass, DifferentialSummary, LintPass, Pipeline,
    PipelineStats,
};
use ccc_bignum::{modpow_naive, FixedBaseTable, MontgomeryCtx, Uint};
use ccc_core::IssuanceChecker;
use ccc_crypto::batch::{verify_batch, BatchItem};
use ccc_crypto::{
    set_verify_batch_policy, set_verify_table_policy, sha256, BatchPolicy, Drbg, Group, KeyPair,
    Signature, TablePolicy, VerifyRoute,
};
use ccc_lint::LintSummary;
use std::time::{Duration, Instant};

struct PathTiming {
    name: &'static str,
    nanos_per_op: f64,
}

struct CaseResult {
    label: &'static str,
    modulus_bits: usize,
    exponent_bits: usize,
    iters: usize,
    paths: Vec<PathTiming>,
}

fn time_path(iters: usize, mut f: impl FnMut()) -> f64 {
    // One warmup round, then the measured rounds.
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn run_case(label: &'static str, group: &'static Group, iters: usize) -> CaseResult {
    let ctx = MontgomeryCtx::new(&group.p).expect("group prime is odd");
    let table = FixedBaseTable::new(&ctx, &group.g, group.q.bit_len());
    let mut drbg = Drbg::from_u64(0xbe9c_4a11);
    let exps: Vec<Uint> = (0..4)
        .map(|_| {
            Uint::from_bytes_be(&drbg.bytes(group.scalar_len))
                .rem(&group.q)
                .expect("q > 0")
        })
        .collect();

    // The three paths must agree bit-for-bit before we time them.
    for e in &exps {
        let naive = modpow_naive(&group.g, e, &group.p).expect("p is non-zero");
        assert_eq!(ctx.modpow(&group.g, e), naive, "{label}: montgomery drift");
        assert_eq!(table.pow(&ctx, e), naive, "{label}: fixed-base drift");
    }

    let per = |total: f64| total / exps.len() as f64;
    let naive = per(time_path(iters, || {
        for e in &exps {
            std::hint::black_box(modpow_naive(&group.g, e, &group.p).expect("p is non-zero"));
        }
    }));
    let montgomery = per(time_path(iters, || {
        for e in &exps {
            std::hint::black_box(ctx.modpow(&group.g, e));
        }
    }));
    let fixed_base = per(time_path(iters, || {
        for e in &exps {
            std::hint::black_box(table.pow(&ctx, e));
        }
    }));

    CaseResult {
        label,
        modulus_bits: group.p.bit_len(),
        exponent_bits: group.q.bit_len(),
        iters,
        paths: vec![
            PathTiming { name: "naive", nanos_per_op: naive },
            PathTiming { name: "montgomery_window4", nanos_per_op: montgomery },
            PathTiming { name: "fixed_base_table", nanos_per_op: fixed_base },
        ],
    }
}

/// Corpus size for the pipeline snapshot (matches the issue's 1k-domain
/// acceptance workload).
const PIPELINE_DOMAINS: usize = 1_000;

/// One fused-vs-sequential measurement on a 1k-domain corpus. Returns
/// `(sequential_total, fused_total, fused_stats)` — best-of-`iters` wall
/// times — after asserting the fused summaries are bit-identical to the
/// standalone ones.
fn run_pipeline_case(iters: usize) -> (Duration, Duration, PipelineStats) {
    let corpus = ccc_bench::scan_corpus(PIPELINE_DOMAINS);

    // Correctness gate: fused output must equal the sequential outputs.
    let c1 = IssuanceChecker::new();
    let seq_compliance = CorpusSummary::compute_with_checker(&corpus, &c1);
    let c2 = IssuanceChecker::new();
    let seq_differential = DifferentialSummary::compute_with_checker(&corpus, &c2);
    let c3 = IssuanceChecker::new();
    let seq_lint = LintSummary::compute_with_checker(&corpus, &c3);
    let fused_checker = IssuanceChecker::new();
    let ((fc, fd, fl), _) = Pipeline::from_env().run(
        &corpus,
        &fused_checker,
        (CompliancePass::new(), DifferentialPass::new(), LintPass::new()),
    );
    assert_eq!(fc.summary, seq_compliance, "fused compliance summary drifted");
    assert_eq!(fd.summary, seq_differential, "fused differential summary drifted");
    assert_eq!(fl.summary, seq_lint, "fused lint summary drifted");

    let mut best_seq = Duration::MAX;
    let mut best_fused = Duration::MAX;
    let mut fused_stats = None;
    for _ in 0..iters {
        let start = Instant::now();
        let c1 = IssuanceChecker::new();
        std::hint::black_box(CorpusSummary::compute_with_checker(&corpus, &c1));
        let c2 = IssuanceChecker::new();
        std::hint::black_box(DifferentialSummary::compute_with_checker(&corpus, &c2));
        let c3 = IssuanceChecker::new();
        std::hint::black_box(LintSummary::compute_with_checker(&corpus, &c3));
        best_seq = best_seq.min(start.elapsed());

        let start = Instant::now();
        let checker = IssuanceChecker::new();
        let (passes, stats) = Pipeline::from_env().run(
            &corpus,
            &checker,
            (CompliancePass::new(), DifferentialPass::new(), LintPass::new()),
        );
        let elapsed = start.elapsed();
        std::hint::black_box(&passes);
        drop(passes);
        if elapsed < best_fused {
            best_fused = elapsed;
            fused_stats = Some(stats);
        }
    }
    (best_seq, best_fused, fused_stats.expect("iters > 0"))
}

fn write_pipeline_snapshot(out_path: &str, iters: usize) {
    let (seq, fused, stats) = run_pipeline_case(iters);
    let speedup = seq.as_secs_f64() / fused.as_secs_f64();
    let json = format!(
        "{{\n  \"benchmark\": \"pipeline\",\n  \"unit\": \"seconds\",\n  \"domains\": {},\n  \"passes\": {},\n  \"threads\": {},\n  \"iters\": {},\n  \"sequential_3_passes_s\": {:.4},\n  \"fused_3_passes_s\": {:.4},\n  \"speedup\": {:.2},\n  \"fused_generation_s\": {:.4},\n  \"fused_analysis_s\": {:.4},\n  \"fused_cache\": {{ \"lookups\": {}, \"hits\": {}, \"verifications\": {} }}\n}}\n",
        PIPELINE_DOMAINS,
        stats.passes,
        stats.threads,
        iters,
        seq.as_secs_f64(),
        fused.as_secs_f64(),
        speedup,
        stats.generation.as_secs_f64(),
        stats.analysis.as_secs_f64(),
        stats.cache.lookups,
        stats.cache.hits,
        stats.cache.verifications,
    );
    std::fs::write(out_path, &json).expect("write pipeline snapshot");
    println!(
        "pipeline ({PIPELINE_DOMAINS} domains, 3 passes): sequential {:.3}s, fused {:.3}s, {speedup:.2}x"
    , seq.as_secs_f64(), fused.as_secs_f64());
    println!("{}", stats.render());
    println!("wrote {out_path}");
}

fn write_modexp_snapshot(out_path: &str, iters: usize) {
    let results = [
        run_case("sim256", Group::simulation_256(), iters * 8),
        run_case("rfc3526_1536", Group::rfc3526_1536(), iters),
    ];

    let mut json = String::new();
    json.push_str("{\n  \"benchmark\": \"modexp\",\n  \"unit\": \"ns_per_op\",\n  \"cases\": [\n");
    for (i, r) in results.iter().enumerate() {
        let naive = r.paths[0].nanos_per_op;
        json.push_str(&format!(
            "    {{\n      \"label\": \"{}\",\n      \"modulus_bits\": {},\n      \"exponent_bits\": {},\n      \"iters\": {},\n      \"paths\": {{\n",
            r.label, r.modulus_bits, r.exponent_bits, r.iters
        ));
        for (j, p) in r.paths.iter().enumerate() {
            json.push_str(&format!(
                "        \"{}\": {{ \"ns_per_op\": {:.0}, \"speedup_vs_naive\": {:.2} }}{}\n",
                p.name,
                p.nanos_per_op,
                naive / p.nanos_per_op,
                if j + 1 < r.paths.len() { "," } else { "" }
            ));
        }
        json.push_str("      }\n    }");
        json.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    std::fs::write(out_path, &json).expect("write snapshot");

    for r in &results {
        let naive = r.paths[0].nanos_per_op;
        println!("{} ({}-bit modulus, {}-bit exponent):", r.label, r.modulus_bits, r.exponent_bits);
        for p in &r.paths {
            println!(
                "  {:<20} {:>12.0} ns/op   {:>6.2}x vs naive",
                p.name,
                p.nanos_per_op,
                naive / p.nanos_per_op
            );
        }
    }
    println!("wrote {out_path}");
}

/// The pre-amortization verification — fixed-base `g^s` next to a generic
/// 4-bit-window `y^(q-e)` with no per-key state (what `PublicKey::verify`
/// did before the intern registry). The baseline the routes are judged
/// against; mirrored in `benches/verify.rs`.
fn verify_legacy(kp: &KeyPair, message: &[u8], sig: &Signature) -> bool {
    let group = kp.public.group();
    if sig.s.len() != group.scalar_len {
        return false;
    }
    let s = Uint::from_bytes_be(&sig.s);
    if s >= group.q {
        return false;
    }
    let e_scalar = Uint::from_bytes_be(&sig.e).rem(&group.q).expect("q > 0");
    let neg_e = group.q.checked_sub(&e_scalar).expect("e < q");
    let ctx = MontgomeryCtx::new(&group.p).expect("p odd");
    let gs = ctx.to_montgomery(&group.pow_g(&s));
    let y = ctx.to_montgomery(&Uint::from_bytes_be(kp.public.as_bytes()));
    let ye = ctx.pow_mont(&y, &neg_e);
    let r = ctx.from_montgomery(&ctx.mul(&gs, &ye));
    let r_bytes = match r.to_bytes_be_padded(group.element_len) {
        Some(b) => b,
        None => return false,
    };
    let mut buf = r_bytes;
    buf.extend_from_slice(message);
    sha256(&buf) == sig.e
}

/// ns/op for the three verify routes over one CA-style key on `group`.
fn run_verify_case(label: &'static str, group: &'static Group, iters: usize) -> CaseResult {
    let kp = KeyPair::from_seed(group, b"bench-verify-ca-key");
    let mut drbg = Drbg::from_u64(0xbe9c_4a11);
    let sigs: Vec<(Vec<u8>, Signature)> = (0..4)
        .map(|_| {
            let message = drbg.bytes(48);
            let sig = kp.private.sign(&message);
            (message, sig)
        })
        .collect();

    // Route agreement gate before timing; the hot calls also build the
    // per-key table so the timed region is steady-state.
    for (message, sig) in &sigs {
        assert!(verify_legacy(&kp, message, sig), "{label}: legacy reject");
        assert!(
            kp.public.verify_via(VerifyRoute::MultiExp, message, sig),
            "{label}: cold route reject"
        );
        assert!(
            kp.public.verify_via(VerifyRoute::FixedBase, message, sig),
            "{label}: hot route reject"
        );
    }

    let per = |total: f64| total / sigs.len() as f64;
    let legacy = per(time_path(iters, || {
        for (message, sig) in &sigs {
            std::hint::black_box(verify_legacy(&kp, message, sig));
        }
    }));
    let cold = per(time_path(iters, || {
        for (message, sig) in &sigs {
            std::hint::black_box(kp.public.verify_via(VerifyRoute::MultiExp, message, sig));
        }
    }));
    let hot = per(time_path(iters, || {
        for (message, sig) in &sigs {
            std::hint::black_box(kp.public.verify_via(VerifyRoute::FixedBase, message, sig));
        }
    }));

    CaseResult {
        label,
        modulus_bits: group.p.bit_len(),
        exponent_bits: group.q.bit_len(),
        iters,
        paths: vec![
            PathTiming { name: "legacy_two_pows", nanos_per_op: legacy },
            PathTiming { name: "cold_multiexp", nanos_per_op: cold },
            PathTiming { name: "hot_fixed_base", nanos_per_op: hot },
        ],
    }
}

/// Best-of-`iters` wall time for a fused 1k-domain sweep under `policy`.
/// Returns the wall time and the sweep's cache stats (route counters
/// included). Summaries are captured so the caller can assert policy
/// independence.
fn run_pipeline_under_policy(
    corpus: &ccc_testgen::Corpus,
    policy: TablePolicy,
    iters: usize,
) -> (Duration, PipelineStats, (CorpusSummary, DifferentialSummary, LintSummary)) {
    set_verify_table_policy(policy);
    let mut best = Duration::MAX;
    let mut best_stats = None;
    let mut summaries = None;
    for _ in 0..iters {
        let checker = IssuanceChecker::new();
        let start = Instant::now();
        let ((fc, fd, fl), stats) = Pipeline::from_env().run(
            corpus,
            &checker,
            (CompliancePass::new(), DifferentialPass::new(), LintPass::new()),
        );
        let elapsed = start.elapsed();
        if elapsed < best {
            best = elapsed;
            best_stats = Some(stats);
        }
        summaries = Some((fc.summary, fd.summary, fl.summary));
    }
    (best, best_stats.expect("iters > 0"), summaries.expect("iters > 0"))
}

fn write_verify_snapshot(out_path: &str, iters: usize, pipeline_iters: usize) {
    let results = [
        run_verify_case("sim256", Group::simulation_256(), iters * 8),
        run_verify_case("rfc3526_1536", Group::rfc3526_1536(), iters),
    ];

    // 1k-domain fused sweep, all-cold vs all-hot. Verdict (and therefore
    // summary) equality across policies is asserted, not assumed.
    let corpus = ccc_bench::scan_corpus(PIPELINE_DOMAINS);
    let (cold_wall, cold_stats, cold_summaries) =
        run_pipeline_under_policy(&corpus, TablePolicy::Never, pipeline_iters);
    let (hot_wall, hot_stats, hot_summaries) =
        run_pipeline_under_policy(&corpus, TablePolicy::Always, pipeline_iters);
    set_verify_table_policy(TablePolicy::Auto);
    assert_eq!(cold_summaries, hot_summaries, "route policy changed analysis results");
    let pipeline_speedup = cold_wall.as_secs_f64() / hot_wall.as_secs_f64();

    let mut json = String::new();
    json.push_str("{\n  \"benchmark\": \"verify\",\n  \"unit\": \"ns_per_op\",\n  \"cases\": [\n");
    for (i, r) in results.iter().enumerate() {
        let legacy = r.paths[0].nanos_per_op;
        json.push_str(&format!(
            "    {{\n      \"label\": \"{}\",\n      \"modulus_bits\": {},\n      \"exponent_bits\": {},\n      \"iters\": {},\n      \"paths\": {{\n",
            r.label, r.modulus_bits, r.exponent_bits, r.iters
        ));
        for (j, p) in r.paths.iter().enumerate() {
            json.push_str(&format!(
                "        \"{}\": {{ \"ns_per_op\": {:.0}, \"speedup_vs_legacy\": {:.2} }}{}\n",
                p.name,
                p.nanos_per_op,
                legacy / p.nanos_per_op,
                if j + 1 < r.paths.len() { "," } else { "" }
            ));
        }
        json.push_str("      }\n    }");
        json.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"pipeline_1k\": {{\n    \"domains\": {},\n    \"iters\": {},\n    \"threads\": {},\n    \"all_cold_s\": {:.4},\n    \"all_hot_s\": {:.4},\n    \"speedup\": {:.2},\n    \"hot_routes\": {{ \"fixed_base_hits\": {}, \"cold_multiexps\": {}, \"tables_built\": {} }},\n    \"cold_routes\": {{ \"fixed_base_hits\": {}, \"cold_multiexps\": {}, \"tables_built\": {} }}\n  }}\n",
        PIPELINE_DOMAINS,
        pipeline_iters,
        hot_stats.threads,
        cold_wall.as_secs_f64(),
        hot_wall.as_secs_f64(),
        pipeline_speedup,
        hot_stats.cache.fixed_base_hits,
        hot_stats.cache.cold_multiexps,
        hot_stats.cache.tables_built,
        cold_stats.cache.fixed_base_hits,
        cold_stats.cache.cold_multiexps,
        cold_stats.cache.tables_built,
    ));
    json.push_str("}\n");
    std::fs::write(out_path, &json).expect("write verify snapshot");

    for r in &results {
        let legacy = r.paths[0].nanos_per_op;
        println!(
            "{} ({}-bit modulus, {}-bit exponent):",
            r.label, r.modulus_bits, r.exponent_bits
        );
        for p in &r.paths {
            println!(
                "  {:<20} {:>12.0} ns/op   {:>6.2}x vs legacy",
                p.name,
                p.nanos_per_op,
                legacy / p.nanos_per_op
            );
        }
    }
    println!(
        "pipeline ({PIPELINE_DOMAINS} domains, 3 passes): all-cold {:.3}s, all-hot {:.3}s, {pipeline_speedup:.2}x",
        cold_wall.as_secs_f64(),
        hot_wall.as_secs_f64()
    );
    println!("wrote {out_path}");
}

/// Batch sizes swept by the batch snapshot.
const BATCH_SIZES: [usize; 5] = [1, 4, 16, 64, 256];

struct BatchCase {
    label: &'static str,
    modulus_bits: usize,
    exponent_bits: usize,
    iters: usize,
    cold_ns: f64,
    hot_ns: f64,
    /// (batch size, ns per signature) per swept size.
    sizes: Vec<(usize, f64)>,
}

/// ns/sig for `verify_batch` across [`BATCH_SIZES`] plus fresh hot/cold
/// per-signature reference timings, over one CA-style key on `group`.
/// Batch verdicts are cross-checked against sequential `verify` before
/// anything is timed.
fn run_batch_case(label: &'static str, group: &'static Group, iters: usize) -> BatchCase {
    let kp = KeyPair::from_seed(group, b"bench-batch-ca-key");
    let mut drbg = Drbg::from_u64(0x0ba7_c4ed);
    let max = *BATCH_SIZES.iter().max().expect("non-empty");
    let sigs: Vec<(Vec<u8>, Signature)> = (0..max)
        .map(|_| {
            let message = drbg.bytes(48);
            let sig = kp.private.sign(&message);
            (message, sig)
        })
        .collect();
    let items: Vec<BatchItem<'_>> = sigs
        .iter()
        .map(|(m, s)| (&kp.public, m.as_slice(), s))
        .collect();

    // Correctness gate: batch verdicts equal sequential verdicts on every
    // input (this also promotes the key and builds the shared tables, so
    // the timed regions below are steady-state).
    let out = verify_batch(&items);
    for (i, (message, sig)) in sigs.iter().enumerate() {
        let scalar = kp.public.verify(message, sig);
        assert!(scalar, "{label}: sequential reject at {i}");
        assert_eq!(out.verdicts[i], scalar, "{label}: batch/sequential split at {i}");
    }
    assert!(out.healed.is_empty(), "{label}: aggregate drift outside fault tests");

    // Interleaved best-of-rounds: every round measures the baselines AND
    // every batch size, and each quantity keeps its fastest round. A load
    // spike then degrades one round of everything alike instead of
    // skewing whichever quantity it happened to land on, so the
    // *ratios* the committed snapshot reports stay reproducible on a
    // shared host.
    const ROUNDS: usize = 8;
    let per = |total: f64, n: usize| total / n as f64;
    let probe = &sigs[..4];
    let mut cold_ns = f64::INFINITY;
    let mut hot_ns = f64::INFINITY;
    let mut size_ns = vec![f64::INFINITY; BATCH_SIZES.len()];
    let baseline_reps = (iters / ROUNDS).max(1);
    for _ in 0..ROUNDS {
        cold_ns = cold_ns.min(per(
            time_path(baseline_reps, || {
                for (message, sig) in probe {
                    std::hint::black_box(kp.public.verify_via(
                        VerifyRoute::MultiExp,
                        message,
                        sig,
                    ));
                }
            }),
            probe.len(),
        ));
        hot_ns = hot_ns.min(per(
            time_path(baseline_reps, || {
                for (message, sig) in probe {
                    std::hint::black_box(kp.public.verify_via(
                        VerifyRoute::FixedBase,
                        message,
                        sig,
                    ));
                }
            }),
            probe.len(),
        ));
        for (slot, &size) in size_ns.iter_mut().zip(BATCH_SIZES.iter()) {
            // Bound total work per size: big batches need fewer repeats
            // for the same statistical weight.
            let reps = (iters / size / ROUNDS).max(2);
            *slot = slot.min(per(
                time_path(reps, || {
                    std::hint::black_box(verify_batch(&items[..size]));
                }),
                size,
            ));
        }
    }
    let sizes = BATCH_SIZES.iter().copied().zip(size_ns).collect();

    BatchCase {
        label,
        modulus_bits: group.p.bit_len(),
        exponent_bits: group.q.bit_len(),
        iters,
        cold_ns,
        hot_ns,
        sizes,
    }
}

/// One fused 1k-domain sweep under the given batch policy (the table
/// policy stays `Auto`). Returns wall time, pipeline stats, and the
/// summaries so the caller can assert policy independence.
fn run_pipeline_once_under_batch_policy(
    corpus: &ccc_testgen::Corpus,
    policy: BatchPolicy,
) -> (Duration, PipelineStats, (CorpusSummary, DifferentialSummary, LintSummary)) {
    set_verify_batch_policy(policy);
    let checker = IssuanceChecker::new();
    let start = Instant::now();
    let ((fc, fd, fl), stats) = Pipeline::from_env().run(
        corpus,
        &checker,
        (CompliancePass::new(), DifferentialPass::new(), LintPass::new()),
    );
    (start.elapsed(), stats, (fc.summary, fd.summary, fl.summary))
}

fn write_batch_snapshot(out_path: &str, iters: usize, pipeline_iters: usize) {
    let results = [
        run_batch_case("sim256", Group::simulation_256(), iters * 8),
        run_batch_case("rfc3526_1536", Group::rfc3526_1536(), iters),
    ];

    // 1k-domain fused sweep, deferred batching off vs on, the two
    // policies interleaved each round so slow host drift hits both
    // sides alike. Summary equality across the policies is asserted,
    // not assumed.
    let corpus = ccc_bench::scan_corpus(PIPELINE_DOMAINS);
    let mut off_wall = Duration::MAX;
    let mut on_wall = Duration::MAX;
    let mut off_stats = None;
    let mut on_stats = None;
    for _ in 0..pipeline_iters {
        let (off, stats, off_summaries) =
            run_pipeline_once_under_batch_policy(&corpus, BatchPolicy::Off);
        if off < off_wall {
            off_stats = Some(stats);
        }
        let (on, stats, on_summaries) =
            run_pipeline_once_under_batch_policy(&corpus, BatchPolicy::Auto);
        assert_eq!(off_summaries, on_summaries, "batch policy changed analysis results");
        off_wall = off_wall.min(off);
        if on < on_wall {
            on_wall = on;
            on_stats = Some(stats);
        }
    }
    set_verify_batch_policy(BatchPolicy::Auto);
    let off_stats = off_stats.expect("pipeline_iters > 0");
    let on_stats = on_stats.expect("pipeline_iters > 0");
    let pipeline_speedup = off_wall.as_secs_f64() / on_wall.as_secs_f64();

    let mut json = String::new();
    json.push_str("{\n  \"benchmark\": \"batch\",\n  \"unit\": \"ns_per_sig\",\n  \"cases\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\n      \"label\": \"{}\",\n      \"modulus_bits\": {},\n      \"exponent_bits\": {},\n      \"iters\": {},\n      \"routes\": {{\n        \"cold_multiexp\": {{ \"ns_per_op\": {:.0} }},\n        \"hot_fixed_base\": {{ \"ns_per_op\": {:.0} }}\n      }},\n      \"batch_sizes\": {{\n",
            r.label, r.modulus_bits, r.exponent_bits, r.iters, r.cold_ns, r.hot_ns
        ));
        for (j, (size, ns)) in r.sizes.iter().enumerate() {
            json.push_str(&format!(
                "        \"{}\": {{ \"ns_per_sig\": {:.0}, \"speedup_vs_cold\": {:.2}, \"speedup_vs_hot\": {:.2} }}{}\n",
                size,
                ns,
                r.cold_ns / ns,
                r.hot_ns / ns,
                if j + 1 < r.sizes.len() { "," } else { "" }
            ));
        }
        json.push_str("      }\n    }");
        json.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"pipeline_1k\": {{\n    \"domains\": {},\n    \"iters\": {},\n    \"threads\": {},\n    \"batch_off_s\": {:.4},\n    \"batch_on_s\": {:.4},\n    \"speedup\": {:.2},\n    \"off_cache\": {{ \"verifications\": {} }},\n    \"on_cache\": {{ \"verifications\": {}, \"batched_verifies\": {}, \"batch_flushes\": {} }}\n  }}\n",
        PIPELINE_DOMAINS,
        pipeline_iters,
        on_stats.threads,
        off_wall.as_secs_f64(),
        on_wall.as_secs_f64(),
        pipeline_speedup,
        off_stats.cache.verifications,
        on_stats.cache.verifications,
        on_stats.cache.batched_verifies,
        on_stats.cache.batch_flushes,
    ));
    json.push_str("}\n");
    std::fs::write(out_path, &json).expect("write batch snapshot");

    for r in &results {
        println!(
            "{} ({}-bit modulus, {}-bit exponent): cold {:.0} ns/sig, hot {:.0} ns/sig",
            r.label, r.modulus_bits, r.exponent_bits, r.cold_ns, r.hot_ns
        );
        for (size, ns) in &r.sizes {
            println!(
                "  batch k={size:<4} {ns:>12.0} ns/sig   {:>5.2}x vs cold  {:>5.2}x vs hot",
                r.cold_ns / ns,
                r.hot_ns / ns
            );
        }
    }
    println!(
        "pipeline ({PIPELINE_DOMAINS} domains, 3 passes): batch-off {:.3}s, batch-on {:.3}s, {pipeline_speedup:.2}x ({} checks in {} flushes)",
        off_wall.as_secs_f64(),
        on_wall.as_secs_f64(),
        on_stats.cache.batched_verifies,
        on_stats.cache.batch_flushes,
    );
    println!("wrote {out_path}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let iters: usize = std::env::var("CCC_SNAPSHOT_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(20);
    // The pipeline case runs full 1k-domain sweeps, so its repeat count
    // stays small even when CCC_SNAPSHOT_ITERS cranks up modexp.
    let pipeline_iters = iters.div_ceil(7).max(3);

    match args.first().map(String::as_str) {
        // Pipeline only: `perf_snapshot --pipeline [path]`.
        Some("--pipeline") => {
            let out = args.get(1).map(String::as_str).unwrap_or("BENCH_pipeline.json");
            write_pipeline_snapshot(out, pipeline_iters);
        }
        // Verify routes only: `perf_snapshot --verify [path]`.
        Some("--verify") => {
            let out = args.get(1).map(String::as_str).unwrap_or("BENCH_verify.json");
            write_verify_snapshot(out, iters, pipeline_iters);
        }
        // Batched verification only: `perf_snapshot --batch [path]`.
        Some("--batch") => {
            let out = args.get(1).map(String::as_str).unwrap_or("BENCH_batch.json");
            write_batch_snapshot(out, iters, pipeline_iters);
        }
        // Modexp only, to an explicit path (CI compat).
        Some(path) => write_modexp_snapshot(path, iters),
        // Default: all snapshots at their committed paths.
        None => {
            write_modexp_snapshot("BENCH_modexp.json", iters);
            write_pipeline_snapshot("BENCH_pipeline.json", pipeline_iters);
            write_verify_snapshot("BENCH_verify.json", iters, pipeline_iters);
            write_batch_snapshot("BENCH_batch.json", iters, pipeline_iters);
        }
    }
}
