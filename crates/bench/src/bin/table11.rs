//! Regenerates paper Table 11: CAs/resellers of non-compliant chains.
//!
//! `cargo run --release --bin table11 [domains]`

use ccc_bench::{domains_from_env, scan_corpus, CorpusSummary};
use ccc_core::IssuanceChecker;
use ccc_core::report::{TextTable, count_pct, group_thousands, render_cache_stats};

const CA_ORDER: [&str; 9] = [
    "Let's Encrypt",
    "Digicert",
    "Sectigo Limited",
    "ZeroSSL",
    "GoGetSSL",
    "TAIWAN-CA",
    "cyber_Folks S.A.",
    "Trustico",
    "Other CAs",
];

/// A defect-count projection used for table rows.
type CountFn<'a> = &'a dyn Fn(&ccc_bench::DefectCounts) -> usize;

fn main() {
    let domains = domains_from_env();
    eprintln!("scanning {domains} synthetic domains…");
    let corpus = scan_corpus(domains);
    let checker = IssuanceChecker::new();
    let s = CorpusSummary::compute_with_checker(&corpus, &checker);

    let mut header = vec!["Type"];
    header.extend(CA_ORDER);
    let mut table = TextTable::new(
        "Table 11 — CAs / resellers of non-compliant chains (% of that CA's issuance)",
        &header,
    );
    let rows: Vec<(&str, CountFn<'_>)> = vec![
        ("Non-compliant", &|d| d.any),
        ("Duplicate Certificates", &|d| d.duplicates),
        ("Irrelevant Certificates", &|d| d.irrelevant),
        ("Multiple Paths", &|d| d.multipath),
        ("Reversed Sequences", &|d| d.reversed),
        ("Incomplete Chain", &|d| d.incomplete),
    ];
    for (label, f) in rows {
        let mut row = vec![label.to_string()];
        for ca in CA_ORDER {
            match s.by_ca.get(ca) {
                Some(d) => row.push(count_pct(f(d), d.total)),
                None => row.push("0".to_string()),
            }
        }
        table.row(&row);
    }
    let mut totals = vec!["Total issued".to_string()];
    for ca in CA_ORDER {
        totals.push(
            s.by_ca
                .get(ca)
                .map(|d| group_thousands(d.total))
                .unwrap_or_else(|| "0".to_string()),
        );
    }
    table.row(&totals);
    println!("{}", table.render());
    println!(
        "paper Table 11 rates: non-compliance — LE 1.2%, Digicert 7.9%, Sectigo 10.7%,\n\
         ZeroSSL 2.5%, GoGetSSL 16.7%, TAIWAN-CA 50.4%, cyber_Folks 66.2%, Trustico 65.7%;\n\
         reversed sequences dominate the three reversed-bundle resellers; TAIWAN-CA's\n\
         non-compliance is mostly incomplete chains (41.9%)."
    );
    eprintln!("{}", render_cache_stats(&checker.snapshot_stats()));
}
