//! Corpus-wide lint pass: severity × rule histogram plus the
//! compliance/lint consistency cross-check.
//!
//! ```text
//! cargo run --release --bin table_lint [domains] [--baseline f] [--write-baseline f]
//! ```
//!
//! Exit status is non-zero when (a) any chain violates the
//! "non-compliant ⇔ ≥1 error finding" contract, or (b) Error-severity
//! findings remain after baseline suppression. CI runs this with the
//! committed `ci/lint-baseline.json`, so the job fails only on *new*
//! errors.

use ccc_bench::{scan_corpus, CompliancePass, LintPass, Pipeline};
use ccc_core::report::{count_pct, group_thousands, TextTable};
use ccc_core::IssuanceChecker;
use ccc_lint::{registry, Baseline, Severity};
use std::process::ExitCode;

/// Default corpus size for the lint table (smaller than the analysis
/// tables: the lint pass retains per-finding detail).
const DEFAULT_DOMAINS: usize = 1_000;

struct Args {
    domains: usize,
    baseline: Option<String>,
    write_baseline: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        domains: std::env::var("CCC_DOMAINS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_DOMAINS),
        baseline: None,
        write_baseline: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--baseline" => {
                args.baseline = Some(it.next().ok_or("--baseline needs a path")?);
            }
            "--write-baseline" => {
                args.write_baseline = Some(it.next().ok_or("--write-baseline needs a path")?);
            }
            other => match other.parse::<usize>() {
                Ok(n) => args.domains = n,
                Err(_) => return Err(format!("unrecognized argument '{other}'")),
            },
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("table_lint: {e}");
            return ExitCode::FAILURE;
        }
    };

    eprintln!("linting {} synthetic domains…", args.domains);
    let corpus = scan_corpus(args.domains);
    let checker = IssuanceChecker::new();
    // Fused sweep: one observation generation feeds both the compliance
    // analysis and the lint engine (DESIGN.md §12). The compliance leg
    // replaces the per-chain analyze_compliance call the lint summary
    // used to make internally, and doubles as a cross-check below.
    let ((compliance, lint), stats) = Pipeline::from_env().run(
        &corpus,
        &checker,
        (CompliancePass::new(), LintPass::new()),
    );
    let compliance = compliance.into_summary();
    let s = lint.into_summary();
    if s.noncompliant_chains != compliance.noncompliant {
        eprintln!(
            "CONSISTENCY FAILURE: lint saw {} non-compliant chain(s), compliance pass saw {}",
            s.noncompliant_chains, compliance.noncompliant
        );
        return ExitCode::FAILURE;
    }

    // Severity × rule histogram, registry order within severity bands.
    let mut table = TextTable::new(
        "Lint findings by rule",
        &["Rule", "Scope", "Findings", "Chains (% of corpus)", "Citation"],
    );
    for severity in Severity::ALL {
        for rule in registry().iter().filter(|r| r.severity() == severity) {
            let hits = s.rule_hits.get(rule.id()).copied().unwrap_or(0);
            let chains = s.chains_by_rule.get(rule.id()).copied().unwrap_or(0);
            table.row(&[
                format!("{} {}", severity.label(), rule.id()),
                rule.scope().label().to_string(),
                group_thousands(hits),
                count_pct(chains, s.total),
                rule.citation().to_string(),
            ]);
        }
    }
    println!("{}", table.render());

    let mut totals = TextTable::new("Findings by severity", &["Severity", "Findings"]);
    for severity in Severity::ALL {
        totals.row(&[
            severity.label().to_string(),
            group_thousands(s.severity_count(severity)),
        ]);
    }
    println!("{}", totals.render());

    println!(
        "chains: {} linted, {} non-compliant (analyze_compliance), {} with ≥1 error finding",
        group_thousands(s.total),
        group_thousands(s.noncompliant_chains),
        group_thousands(s.chains_with_error),
    );
    // Phase split + cache delta for the fused sweep (stderr: stdout stays
    // deterministic for output diffing).
    eprintln!("{}", stats.render());

    // Consistency cross-check: the engine and analyze_compliance are
    // mutual test oracles.
    if !s.is_consistent() {
        eprintln!(
            "CONSISTENCY FAILURE: {} chain(s) violate the non-compliant ⇔ error-finding contract:",
            s.consistency_violations.len()
        );
        for v in s.consistency_violations.iter().take(20) {
            eprintln!("  {v}");
        }
        return ExitCode::FAILURE;
    }
    println!("consistency: non-compliant ⇔ ≥1 error finding held for all chains");

    if let Some(path) = &args.write_baseline {
        let baseline = Baseline::from_findings(s.error_findings.iter());
        if let Err(e) = std::fs::write(path, baseline.to_json()) {
            eprintln!("table_lint: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("baseline: wrote {} suppression(s) to {path}", baseline.len());
        return ExitCode::SUCCESS;
    }

    let baseline = match &args.baseline {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => match Baseline::parse(&text) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("table_lint: parsing {path}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            Err(e) => {
                eprintln!("table_lint: reading {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => Baseline::empty(),
    };
    let new_errors = baseline.filter(s.error_findings.clone());
    let suppressed = s.error_findings.len() - new_errors.len();
    if suppressed > 0 {
        println!(
            "baseline: suppressed {} of {} error finding(s)",
            group_thousands(suppressed),
            group_thousands(s.error_findings.len())
        );
    }
    if new_errors.is_empty() {
        println!("no new error findings");
        ExitCode::SUCCESS
    } else {
        eprintln!("{} new error finding(s):", group_thousands(new_errors.len()));
        for f in new_errors.iter().take(20) {
            eprintln!("  {}: {f}", f.domain);
        }
        if new_errors.len() > 20 {
            eprintln!("  … and {} more", new_errors.len() - 20);
        }
        ExitCode::FAILURE
    }
}
