//! Regenerates paper Table 7: completeness of certificate chains, plus the
//! §4.3 AIA-recoverability breakdown.
//!
//! `cargo run --release --bin table7 [domains]`

use ccc_bench::{domains_from_env, scan_corpus, CorpusSummary};
use ccc_core::IssuanceChecker;
use ccc_core::report::{TextTable, count_pct, group_thousands, render_cache_stats};
use ccc_core::Completeness;

fn main() {
    let domains = domains_from_env();
    eprintln!("scanning {domains} synthetic domains…");
    let corpus = scan_corpus(domains);
    let checker = IssuanceChecker::new();
    let s = CorpusSummary::compute_with_checker(&corpus, &checker);

    let mut table = TextTable::new(
        "Table 7 — Completeness of certificate chain",
        &["Type", "This run", "Paper"],
    );
    let rows = [
        (Completeness::CompleteWithRoot, "79,144 (8.7%)"),
        (Completeness::CompleteWithoutRoot, "815,105 (89.9%)"),
        (Completeness::Incomplete, "12,087 (1.3%)"),
    ];
    for (class, paper) in rows {
        let count = s.completeness.get(&class).copied().unwrap_or(0);
        table.row(&[
            class.label().to_string(),
            count_pct(count, s.total),
            paper.to_string(),
        ]);
    }
    println!("{}", table.render());

    let incomplete = s
        .completeness
        .get(&Completeness::Incomplete)
        .copied()
        .unwrap_or(0);
    let mut aia = TextTable::new(
        "Incomplete-chain recoverability (§4.3)",
        &["Outcome", "This run", "Paper"],
    );
    aia.row(&[
        "completable via recursive AIA".to_string(),
        count_pct(s.aia_completable, incomplete),
        "11,419 (94.5%)".to_string(),
    ]);
    aia.row(&[
        "missing exactly one intermediate".to_string(),
        count_pct(s.missing_single_intermediate, incomplete),
        "8,729 (72.2%)".to_string(),
    ]);
    for (reason, count) in &s.incomplete_reasons {
        let paper = match *reason {
            "AIA field missing" => "579",
            "AIA URI dead" => "88",
            "AIA served wrong certificate" => "1",
            _ => "-",
        };
        aia.row(&[
            reason.to_string(),
            group_thousands(*count),
            paper.to_string(),
        ]);
    }
    println!("{}", aia.render());
    println!(
        "chains whose omitted root was located via AIA download rather than \
         store SKID match: {}",
        group_thousands(s.root_via_aia)
    );
    eprintln!("{}", render_cache_stats(&checker.snapshot_stats()));
}
