//! Metrics-exposition snapshot over a seeded corpus sweep.
//!
//! Runs the fused (compliance, lint) pipeline over the scan corpus, then
//! a small fault-injection sweep, and dumps the resulting `ccc-obs`
//! registry — Prometheus text by default, the no-serde JSON object
//! format when the output path ends in `.json`.
//!
//! ```text
//! metrics_snapshot [path]             dump to path (default: stdout)
//! ```
//!
//! `CCC_DOMAINS` scales the corpus (default 1000); `CCC_THREADS` picks
//! the worker count. Stable-classified series are byte-identical across
//! worker counts for a fixed corpus — that invariant is pinned by
//! `crates/bench/tests/metrics_snapshot.rs` and the CI
//! `metrics-determinism` job; this binary is the interactive/profiling
//! entry point for the same dump.

use ccc_bench::{
    scan_corpus, touch_pipeline_metrics, CompliancePass, FaultPass, FaultScenario, LintPass,
    Pipeline,
};
use ccc_core::IssuanceChecker;

fn main() {
    let out = std::env::args().nth(1);
    // Unlike the table binaries, argv[1] is the output *path*; the corpus
    // size comes from `CCC_DOMAINS` alone (snapshot-sized default).
    let domains: usize = std::env::var("CCC_DOMAINS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000);
    eprintln!("metrics snapshot: sweeping {domains} synthetic domains…");
    let corpus = scan_corpus(domains);

    let checker = IssuanceChecker::new();
    let (_passes, stats) = Pipeline::from_env().run(
        &corpus,
        &checker,
        (CompliancePass::new(), LintPass::new()),
    );
    eprintln!("{}", stats.render());

    // A one-scenario fault sweep so the netsim fetch and AIA-retry
    // families carry non-zero counts in the dump.
    let chaos_checker = IssuanceChecker::new();
    let scenario = FaultScenario::for_corpus(&corpus, 0.1);
    let (_fault, chaos_stats) =
        Pipeline::from_env().run(&corpus, &chaos_checker, FaultPass::new(vec![scenario]));
    eprintln!("{}", chaos_stats.render());

    // Register the families this run may not have exercised so the dump
    // always enumerates the full schema.
    touch_pipeline_metrics();
    ccc_core::builder::touch_build_metrics();
    ccc_netsim::touch_fetch_metrics();
    let _ = ccc_crypto::verify_route_stats();

    let snapshot = ccc_obs::MetricsRegistry::global().snapshot();
    let rendered = match out.as_deref() {
        Some(path) if path.ends_with(".json") => ccc_obs::render_json(&snapshot),
        _ => ccc_obs::render_prometheus(&snapshot),
    };
    match out.as_deref() {
        None | Some("-") => print!("{rendered}"),
        Some(path) => {
            std::fs::write(path, &rendered).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            eprintln!("wrote {path}");
        }
    }
}
