//! Regenerates paper Table 10: HTTP servers used by domains with
//! non-compliant certificate chains.
//!
//! `cargo run --release --bin table10 [domains]`

use ccc_bench::{domains_from_env, scan_corpus, server_columns, CorpusSummary};
use ccc_core::IssuanceChecker;
use ccc_core::report::{TextTable, count_pct, render_cache_stats};

/// A defect-count projection used for table rows.
type CountFn<'a> = &'a dyn Fn(&ccc_bench::DefectCounts) -> usize;

fn main() {
    let domains = domains_from_env();
    eprintln!("scanning {domains} synthetic domains…");
    let corpus = scan_corpus(domains);
    let checker = IssuanceChecker::new();
    let s = CorpusSummary::compute_with_checker(&corpus, &checker);

    let columns = server_columns();
    let mut header = vec!["Non-compliant Type"];
    header.extend(columns.iter().copied());
    header.push("Total");
    let mut table = TextTable::new(
        "Table 10 — HTTP servers of domains with non-compliant chains",
        &header,
    );

    let metric = |f: CountFn<'_>| -> (Vec<usize>, usize) {
        let counts: Vec<usize> = columns
            .iter()
            .map(|c| s.by_server.get(c).map(f).unwrap_or(0))
            .collect();
        let total = counts.iter().sum();
        (counts, total)
    };
    let rows: Vec<(&str, CountFn<'_>)> = vec![
        ("Overview (any)", &|d| d.any),
        ("Duplicate Certificates", &|d| d.duplicates),
        ("Duplicate Leaf", &|d| d.duplicate_leaf),
        ("Irrelevant Certificates", &|d| d.irrelevant),
        ("Multiple Paths", &|d| d.multipath),
        ("Reversed Sequences", &|d| d.reversed),
        ("Incomplete Chain", &|d| d.incomplete),
    ];
    for (label, f) in rows {
        let (counts, total) = metric(f);
        let mut row = vec![label.to_string()];
        row.extend(counts.iter().map(|&c| count_pct(c, total)));
        row.push(total.to_string());
        table.row(&row);
    }
    println!("{}", table.render());
    println!(
        "paper Table 10 shape to check: Apache leads duplicates (56.1%, and 63.3% of\n\
         duplicate leaves) thanks to its two-file layout; Azure shows ~0 duplicate\n\
         leaves (upload check); Nginx leads reversed sequences."
    );
    eprintln!("{}", render_cache_stats(&checker.snapshot_stats()));
}
