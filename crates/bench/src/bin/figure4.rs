//! Regenerates paper Figure 4 / finding I-3: the moex.gov.tw multi-path
//! case where only backtracking clients find the trusted path.
//!
//! `cargo run --release --bin figure4`

use ccc_core::builder::BuildContext;
use ccc_core::clients::client_profiles;
use ccc_core::report::TextTable;
use ccc_core::{IssuanceChecker, TopologyGraph};
use ccc_testgen::scenarios::ScenarioSet;

fn main() {
    let set = ScenarioSet::new(5);
    let scenario = set.figure4();
    println!("{} — {}", scenario.name, scenario.description);
    let checker = IssuanceChecker::new();
    let graph = TopologyGraph::build(&scenario.served, &checker);
    println!("graph: {}\n", graph.describe());

    let ctx = BuildContext {
        store: &set.store,
        aia: Some(&set.aia),
        cache: &[],
        now: set.now,
        checker: &checker,
    };
    let mut table = TextTable::new(
        "Client verdicts",
        &["Client", "Verdict", "Backtracks", "Terminal"],
    );
    for (kind, engine) in client_profiles() {
        let outcome = engine.process(&scenario.served, &ctx);
        let terminal = outcome
            .path
            .last()
            .map(|c| c.subject().to_string())
            .unwrap_or_default();
        table.row(&[
            kind.name().to_string(),
            match &outcome.verdict {
                Ok(()) => "accepted".into(),
                Err(e) => format!("REJECTED: {e}"),
            },
            outcome.stats.backtracks.to_string(),
            terminal,
        ]);
    }
    println!("{}", table.render());
    println!(
        "paper I-3: OpenSSL and GnuTLS walked into the untrusted government branch;\n\
         CryptoAPI backtracked to the trusted path; MbedTLS's outcome depended only\n\
         on served order."
    );
}
