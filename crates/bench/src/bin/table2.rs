//! Regenerates paper Table 2: the nine chain-construction capability test
//! cases, rendered with the actual synthetic chains this repository
//! generates for each.
//!
//! `cargo run --release --bin table2`

use ccc_core::report::TextTable;

fn main() {
    let mut table = TextTable::new(
        "Table 2 — Certificate chain construction capability tests",
        &["#", "Capability", "Test case"],
    );
    let rows = [
        ("1", "Order Reorganization", "{E, I2, I1, R} — true chain E <- I1 <- I2 <- R"),
        ("2", "Redundancy Elimination", "{E, X, I, R} — X unrelated self-signed"),
        ("3", "AIA Completion", "{E, I1} — I1's AIA caIssuers URI serves I2"),
        (
            "4",
            "Validity Priority",
            "{E, I1(expired), I(valid), I2(recent), I3(long), R} — same subject+key",
        ),
        (
            "5",
            "KID Matching Priority",
            "{E, I1(KID mismatch), I2(KID absent), I(KID match), R} — same subject+key",
        ),
        (
            "6",
            "KeyUsage Correctness Priority",
            "{E, I1(no keyCertSign), I2(KU absent), I(KU correct), R} — same subject+key",
        ),
        (
            "7",
            "Basic Constraints Priority",
            "{E, I1, I3(pathLen 0 violated), I2(pathLen ok), R} — I2/I3 same subject+key",
        ),
        ("8", "Path Length Constraint", "{E, I1..In, R} probed for total lengths 3..=53"),
        ("9", "Self-signed Leaf Certificate", "{ES, E, I, R} — ES self-signed twin of E"),
    ];
    for (n, cap, case) in rows {
        table.row_str(&[n, cap, case]);
    }
    println!("{}", table.render());
    println!(
        "E = end-entity, I = intermediate, R = trusted root, X = irrelevant,\n\
         ES = self-signed server certificate. Priority-test intermediates share\n\
         subject DN AND key (reissued certificates), so every candidate's\n\
         signature verifies and the constructed path reveals the preference.\n\
         Generators: ccc_testgen::CapabilitySuite (see table9 for the results)."
    );
}
