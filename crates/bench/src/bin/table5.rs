//! Regenerates paper Table 5: chains with non-compliant issuance order,
//! plus the §4.2 duplicate-role breakdown.
//!
//! `cargo run --release --bin table5 [domains]`

use ccc_bench::{domains_from_env, scan_corpus, CorpusSummary};
use ccc_core::IssuanceChecker;
use ccc_core::report::{TextTable, count_pct, group_thousands, render_cache_stats};

fn main() {
    let domains = domains_from_env();
    eprintln!("scanning {domains} synthetic domains…");
    let corpus = scan_corpus(domains);
    let checker = IssuanceChecker::new();
    let s = CorpusSummary::compute_with_checker(&corpus, &checker);

    let mut table = TextTable::new(
        "Table 5 — Chains with non-compliant issuance order",
        &["Type", "This run (% of order-non-compliant)", "Paper"],
    );
    let rows = [
        ("Duplicate Certificates", s.dup_chains, "5,974 (35.2%)"),
        ("Irrelevant Certificates", s.irrelevant_chains, "3,032 (17.9%)"),
        ("Multiple Paths", s.multipath_chains, "246 (1.5%)"),
        ("Reversed Sequences", s.reversed_chains, "8,566 (50.5%)"),
    ];
    for (label, count, paper) in rows {
        table.row(&[
            label.to_string(),
            count_pct(count, s.order_noncompliant),
            paper.to_string(),
        ]);
    }
    table.row(&[
        "Total".to_string(),
        group_thousands(s.order_noncompliant),
        "16,952".to_string(),
    ]);
    println!("{}", table.render());

    let mut detail = TextTable::new(
        "Duplicate breakdown (§4.2)",
        &["Role", "Chains (this run)", "Paper"],
    );
    detail.row(&[
        "Duplicated leaf".to_string(),
        group_thousands(s.dup_leaf_chains),
        "4,730".to_string(),
    ]);
    detail.row(&[
        "Duplicated intermediate".to_string(),
        group_thousands(s.dup_intermediate_chains),
        "1,354".to_string(),
    ]);
    detail.row(&[
        "Duplicated root".to_string(),
        group_thousands(s.dup_root_chains),
        "401".to_string(),
    ]);
    println!("{}", detail.render());
    println!(
        "all-paths-reversed chains: {} (paper: 8,370 of 8,566)\nlongest served list: {} certificates (paper max: 29)",
        group_thousands(s.all_paths_reversed_chains),
        s.longest_list
    );
    eprintln!("{}", render_cache_stats(&checker.snapshot_stats()));
}
