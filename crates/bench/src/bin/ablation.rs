//! Ablation study over the chain-construction capabilities the paper's
//! §6.2 recommends: starting from a fully capable client, knock out one
//! capability at a time and measure the acceptance rate (and work done)
//! over the non-compliant corpus subset.
//!
//! `cargo run --release --bin ablation [domains]`

use ccc_bench::{
    domains_from_env, scan_corpus, AnalysisPass, ObservationMemo, PassContext, Pipeline,
};
use ccc_core::builder::{BuildContext, BuilderPolicy, ChainEngine, KidPriority, SearchScope,
    ValidityPriority};
use ccc_core::report::{count_pct, TextTable};
use ccc_core::{CompletenessAnalyzer, IssuanceChecker};
use ccc_testgen::corpus::scan_time;
use ccc_testgen::DomainObservation;
use ccc_x509::Certificate;

fn variants() -> Vec<(&'static str, BuilderPolicy)> {
    let full = BuilderPolicy::full_capability("full");
    vec![
        ("full capability", full.clone()),
        (
            "no AIA completion",
            BuilderPolicy { aia: false, ..full.clone() },
        ),
        (
            "no backtracking",
            BuilderPolicy { backtracking: false, ..full.clone() },
        ),
        (
            "no reordering (forward scan)",
            BuilderPolicy {
                scope: SearchScope::ForwardOnly,
                partial_validation: true,
                ..full.clone()
            },
        ),
        (
            "flat priorities",
            BuilderPolicy {
                kid_priority: KidPriority::NoPreference,
                validity_priority: ValidityPriority::NoPreference,
                key_usage_priority: false,
                basic_constraints_priority: false,
                ..full.clone()
            },
        ),
        (
            "no trusted-first preference",
            BuilderPolicy { trusted_first: false, ..full.clone() },
        ),
        (
            "path limit = 8 (Firefox-like)",
            BuilderPolicy { max_path_len: Some(8), ..full.clone() },
        ),
        (
            "list limit = 16 (GnuTLS-like)",
            BuilderPolicy { max_list_len: Some(16), ..full.clone() },
        ),
        // Interactions: AIA completion can mask the loss of other
        // capabilities (a fetch recovers an out-of-position issuer), so
        // the paper's I-1/I-3 client deficits only show once AIA is gone.
        (
            "no AIA + no reordering (MbedTLS-like)",
            BuilderPolicy {
                aia: false,
                scope: SearchScope::ForwardOnly,
                partial_validation: true,
                ..full.clone()
            },
        ),
        (
            "no AIA + no backtracking (OpenSSL-like)",
            BuilderPolicy {
                aia: false,
                backtracking: false,
                ..full
            },
        ),
    ]
}

/// Custom pipeline pass collecting the non-compliant corpus subset: the
/// study only needs the served chains that fail compliance, so the sweep
/// stays O(chunk) in observations and O(subset) in retained chains (not
/// O(corpus)). Doubles as the out-of-crate exercise of the
/// [`AnalysisPass`] extension point (DESIGN.md §12).
struct NoncompliantSubset<'c> {
    state: Option<(&'c IssuanceChecker, CompletenessAnalyzer<'c>)>,
    chains: Vec<Vec<Certificate>>,
}

impl<'c> NoncompliantSubset<'c> {
    fn new() -> NoncompliantSubset<'c> {
        NoncompliantSubset { state: None, chains: Vec::new() }
    }
}

impl<'c> AnalysisPass<'c> for NoncompliantSubset<'c> {
    fn name(&self) -> &'static str {
        "noncompliant-subset"
    }

    fn begin(&self, ctx: PassContext<'c>) -> Self {
        let analyzer = CompletenessAnalyzer::new(
            ctx.checker,
            ctx.corpus.programs.unified(),
            Some(&ctx.corpus.aia),
        );
        NoncompliantSubset { state: Some((ctx.checker, analyzer)), chains: Vec::new() }
    }

    fn visit(&mut self, obs: &DomainObservation, memo: &ObservationMemo) {
        let (checker, analyzer) = self.state.as_ref().expect("forked worker");
        let report = memo.report(obs, checker, analyzer);
        if !report.is_compliant() {
            self.chains.push(obs.served.clone());
        }
    }

    fn merge(&mut self, other: Self) {
        // Rank-order merge keeps the subset in corpus order.
        self.chains.extend(other.chains);
    }
}

fn main() {
    let domains = domains_from_env();
    eprintln!("generating {domains} domains, ablating over the non-compliant subset…");
    let corpus = scan_corpus(domains);
    let checker = IssuanceChecker::new();

    // Collect the non-compliant subset in one streaming sweep.
    let (pass, stats) = Pipeline::from_env().run(&corpus, &checker, NoncompliantSubset::new());
    let subset = pass.chains;
    eprintln!("non-compliant subset: {} chains", subset.len());
    eprintln!("{}", stats.render());

    let ctx = BuildContext {
        store: corpus.programs.unified(),
        aia: Some(&corpus.aia),
        cache: &[],
        now: scan_time(),
        checker: &checker,
    };
    let mut table = TextTable::new(
        "Capability ablation over non-compliant chains",
        &["Variant", "Accepted", "Avg candidates", "Avg AIA fetches", "Avg backtracks"],
    );
    for (name, policy) in variants() {
        let engine = ChainEngine::new(policy);
        let mut accepted = 0usize;
        let mut candidates = 0usize;
        let mut fetches = 0usize;
        let mut backtracks = 0usize;
        for served in &subset {
            let outcome = engine.process(served, &ctx);
            if outcome.accepted() {
                accepted += 1;
            }
            candidates += outcome.stats.candidates_considered;
            fetches += outcome.stats.aia_fetches;
            backtracks += outcome.stats.backtracks;
        }
        let n = subset.len().max(1);
        table.row(&[
            name.to_string(),
            count_pct(accepted, subset.len()),
            format!("{:.2}", candidates as f64 / n as f64),
            format!("{:.3}", fetches as f64 / n as f64),
            format!("{:.3}", backtracks as f64 / n as f64),
        ]);
    }
    println!("{}", table.render());
    println!(
        "paper §6.2: completion (AIA or cache) is the dominant capability, then\n\
         backtracking, then order reorganization; the trusted-first preference\n\
         saves construction attempts without changing outcomes."
    );
}
