//! Regenerates paper Table 1: capability coverage of BetterTLS vs this
//! work.
//!
//! `cargo run --release --bin table1`

use ccc_core::clients::capability_coverage;
use ccc_core::report::{check, TextTable};

fn main() {
    let mut table = TextTable::new(
        "Table 1 — Client chain-building capability coverage: BetterTLS vs this work",
        &["Group", "Capability", "BetterTLS", "This Work"],
    );
    for (group, capability, bettertls, this_work) in capability_coverage() {
        table.row(&[
            group.to_string(),
            capability.to_string(),
            check(bettertls).to_string(),
            check(this_work).to_string(),
        ]);
    }
    println!("{}", table.render());
}
