//! I-4 availability under deterministic network-fault injection: every
//! observation swept through every (fault scenario × client profile)
//! pair on the fused pipeline.
//!
//! ```text
//! cargo run --release --bin table_chaos [domains] [--fault-seed n] [--rates a,b,c]
//! ```
//!
//! stdout carries only the chaos table and summary lines — byte-identical
//! for any `CCC_THREADS` worker count, because every fetch outcome is a
//! pure function of (fault seed, URI, attempt) and latency accrues on
//! per-build simulated clocks. Timings go to stderr.

use ccc_bench::{scan_corpus, FaultPass, FaultScenario, Pipeline};
use ccc_core::IssuanceChecker;
use ccc_netsim::FaultPlan;
use std::process::ExitCode;

/// Default corpus size for the chaos table (each domain costs scenarios ×
/// eight client builds, so the default stays small).
const DEFAULT_DOMAINS: usize = 1_000;

struct Args {
    domains: usize,
    fault_seed: Option<u64>,
    rates: Vec<f64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        domains: std::env::var("CCC_DOMAINS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_DOMAINS),
        fault_seed: None,
        rates: vec![0.0, 0.1, 0.3],
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--fault-seed" => {
                let v = it.next().ok_or("--fault-seed needs a value")?;
                args.fault_seed =
                    Some(v.parse().map_err(|_| format!("bad fault seed '{v}'"))?);
            }
            "--rates" => {
                let v = it.next().ok_or("--rates needs a comma-separated list")?;
                args.rates = v
                    .split(',')
                    .map(|r| r.trim().parse::<f64>().map_err(|_| format!("bad rate '{r}'")))
                    .collect::<Result<Vec<f64>, String>>()?;
                if args.rates.is_empty() {
                    return Err("--rates needs at least one rate".to_string());
                }
            }
            other => match other.parse::<usize>() {
                Ok(n) => args.domains = n,
                Err(_) => return Err(format!("unrecognized argument '{other}'")),
            },
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("table_chaos: {e}");
            return ExitCode::FAILURE;
        }
    };

    eprintln!(
        "chaos-sweeping {} synthetic domains across {} fault scenario(s)…",
        args.domains,
        args.rates.len()
    );
    let corpus = scan_corpus(args.domains);
    let scenarios: Vec<FaultScenario> = args
        .rates
        .iter()
        .map(|&rate| match args.fault_seed {
            // Explicit fault seed: decouple the fault draw from the
            // corpus seed (sweeping plans over one fixed corpus).
            Some(seed) => {
                let mut sc = FaultScenario::for_corpus(&corpus, rate);
                sc.plan = if rate <= 0.0 {
                    FaultPlan::zero(seed)
                } else {
                    FaultPlan::with_fault_rate(seed, rate)
                };
                sc
            }
            None => FaultScenario::for_corpus(&corpus, rate),
        })
        .collect();

    let checker = IssuanceChecker::new();
    let (pass, stats) = Pipeline::from_env().run(&corpus, &checker, FaultPass::new(scenarios));
    let summary = pass.into_summary();

    println!("{}", summary.render_table());
    for scenario in &summary.scenarios {
        let recovered: usize = scenario.per_client.values().map(|c| c.recovered).sum();
        let retries: usize = scenario.per_client.values().map(|c| c.aia_retries).sum();
        let exhausted: usize = scenario
            .per_client
            .values()
            .map(|c| c.budget_exhausted)
            .sum();
        println!(
            "{}: {} retr{}, {} chain(s) recovered by retrying clients, {} budget exhaustion(s)",
            scenario.label,
            retries,
            if retries == 1 { "y" } else { "ies" },
            recovered,
            exhausted
        );
    }
    // Timings to stderr: stdout stays deterministic for output diffing.
    eprintln!("{}", stats.render());
    ExitCode::SUCCESS
}
