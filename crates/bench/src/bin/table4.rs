//! Regenerates paper Table 4: SSL certificate deployment characteristics
//! across HTTP servers, by probing the deployment models directly.
//!
//! `cargo run --release --bin table4`

use ccc_asn1::Time;
use ccc_core::report::{check, TextTable};
use ccc_crypto::Drbg;
use ccc_netsim::admin::{assemble, AdminBehavior};
use ccc_netsim::ca::CaProfile;
use ccc_netsim::httpserver::{FileLayout, HttpServerKind};
use ccc_rootstore::CaUniverse;

fn main() {
    let universe = CaUniverse::default_with_seed(4);
    let profile = &CaProfile::all()[1]; // a manual CA with a ca-bundle
    let bundle = profile.issue(
        &universe,
        0,
        "probe.sim",
        Time::from_ymd(2024, 1, 1).expect("literal date is valid"),
        Time::from_ymd(2025, 1, 1).expect("literal date is valid"),
        &mut Drbg::from_u64(1),
        false,
    );

    let servers = [
        HttpServerKind::ApacheOld,
        HttpServerKind::ApacheNew,
        HttpServerKind::Nginx,
        HttpServerKind::AzureAppGateway,
        HttpServerKind::Iis,
        HttpServerKind::AwsElb,
    ];
    let mut table = TextTable::new(
        "Table 4 — Deployment characteristics across HTTP servers (probed)",
        &[
            "Characteristic",
            "Apache<2.4.8",
            "Apache>=2.4.8",
            "Nginx",
            "Azure AGW",
            "IIS",
            "AWS ELB",
        ],
    );

    let layout_label = |s: HttpServerKind| match s.file_layout() {
        FileLayout::SeparateLeafAndBundle => "SF1",
        FileLayout::FullChain => "SF2",
        FileLayout::Pfx => "SF3",
    };
    let mut row = vec!["Automatic Certificate Management".to_string()];
    row.extend(servers.iter().map(|s| check(s.supports_automation()).to_string()));
    table.row(&row);
    let mut row = vec!["Supported Certificate Fields".to_string()];
    row.extend(servers.iter().map(|s| layout_label(*s).to_string()));
    table.row(&row);

    // Probe: key mismatch (serve someone else's chain).
    let mut row = vec!["Private Key / Leaf Matching Check".to_string()];
    for server in servers {
        let mut files = assemble(&bundle, &AdminBehavior::FollowGuide, server);
        files.key_matches_first_cert = false;
        row.push(check(server.deploy(&files).is_err()).to_string());
    }
    table.row(&row);

    // Probe: duplicate leaf.
    let mut row = vec!["Duplicate Leaf Certificate Check".to_string()];
    for server in servers {
        let files = assemble(&bundle, &AdminBehavior::LeafInChainFile, server);
        row.push(check(server.deploy(&files).is_err()).to_string());
    }
    table.row(&row);

    // Probe: duplicate intermediates.
    let mut row = vec!["Duplicate Intermediate/Root Check".to_string()];
    for server in servers {
        let files = assemble(&bundle, &AdminBehavior::DuplicateBundle(2), server);
        row.push(check(server.deploy(&files).is_err()).to_string());
    }
    table.row(&row);

    println!("{}", table.render());
    println!(
        "SF1 = CertificateFile.pem + Ca-bundle.pem + key; SF2 = FullChain.pem + key; \
         SF3 = PFX container\npaper Table 4: same pattern (all servers check the key; only \
         Azure/IIS reject duplicate leaves; none reject duplicate intermediates)."
    );
}
