//! Regenerates the paper's §5.2 differential-testing statistics: agreement
//! rates across browsers and libraries over non-compliant chains, the
//! I-1…I-4 discrepancy causes, and the corpus-wide availability impact.
//!
//! `cargo run --release --bin section52 [domains]`

use ccc_bench::{domains_from_env, scan_corpus, DifferentialSummary};
use ccc_core::report::{count_pct, render_cache_stats, TextTable};
use ccc_core::IssuanceChecker;

fn main() {
    let domains = domains_from_env();
    eprintln!("generating {domains} domains and running all 8 clients on each…");
    let corpus = scan_corpus(domains);
    let checker = IssuanceChecker::new();
    let d = DifferentialSummary::compute_with_checker(&corpus, &checker);
    let r = &d.report;

    let mut table = TextTable::new(
        "Section 5.2 — differential results over non-compliant chains",
        &["Metric", "This run", "Paper"],
    );
    table.row(&[
        "non-compliant chains tested".into(),
        r.total.to_string(),
        "26,361".into(),
    ]);
    table.row(&[
        "passed all browsers".into(),
        count_pct(r.all_browsers_pass, r.total),
        "61.1% (3 browsers)".into(),
    ]);
    table.row(&[
        "passed all 4 libraries".into(),
        count_pct(r.all_libraries_pass, r.total),
        "47.4%".into(),
    ]);
    table.row(&[
        "browser discrepancies".into(),
        count_pct(r.browser_discrepancies, r.total),
        "3,295 chains".into(),
    ]);
    table.row(&[
        "library discrepancies".into(),
        count_pct(r.library_discrepancies, r.total),
        "10,804 chains".into(),
    ]);
    println!("{}", table.render());

    let mut causes = TextTable::new(
        "Discrepancy causes (I-1 … I-4)",
        &["Cause", "Chains (this run)", "Paper"],
    );
    let paper_cause = |label: &str| -> &'static str {
        match label {
            "I-1 order reorganization" => "51",
            "I-2 overly long chains" => "10",
            "I-3 backtracking" => "1",
            "I-4 AIA completion" => "8,553 (libraries) / 1,074 (Firefox)",
            _ => "-",
        }
    };
    for (cause, count) in &r.causes {
        causes.row(&[
            cause.label().to_string(),
            count.to_string(),
            paper_cause(cause.label()).to_string(),
        ]);
    }
    println!("{}", causes.render());

    let mut per_client = TextTable::new(
        "Per-client acceptance over non-compliant chains",
        &["Client", "Accepted"],
    );
    for (kind, pass) in &r.per_client_pass {
        per_client.row(&[kind.name().to_string(), count_pct(*pass, r.total)]);
    }
    println!("{}", per_client.render());

    println!(
        "corpus-wide availability impact: {} of all chains fail in >=1 library \
         (paper: 40.9% incl. hostname/expiry errors outside chain building); \
         {} fail in >=1 browser (paper: 12.5%).",
        count_pct(d.corpus_library_failures, d.corpus_total),
        count_pct(d.corpus_browser_failures, d.corpus_total),
    );
    if !d.cause_examples.is_empty() {
        println!("\nexample chains per cause:");
        for (cause, domain) in &d.cause_examples {
            println!("  {:<26} {domain}", cause.label());
        }
    }
    eprintln!("{}", render_cache_stats(&checker.snapshot_stats()));
}
