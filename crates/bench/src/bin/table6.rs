//! Regenerates paper Table 6: SSL certificate issuance characteristics of
//! CAs and resellers, by probing the issuance pipelines.
//!
//! `cargo run --release --bin table6`

use ccc_asn1::Time;
use ccc_core::report::{check, TextTable};
use ccc_crypto::Drbg;
use ccc_netsim::ca::{CaProfile, InstallGuide};
use ccc_rootstore::CaUniverse;

fn main() {
    let universe = CaUniverse::default_with_seed(6);
    let profiles = CaProfile::all();
    let picks = ["Let's Encrypt", "ZeroSSL", "GoGetSSL", "cyber_Folks S.A.", "Trustico"];

    let mut header = vec!["Issuance Characteristic"];
    header.extend(picks);
    let mut table = TextTable::new(
        "Table 6 — Issuance characteristics of CAs / resellers (probed)",
        &header,
    );

    let selected: Vec<&CaProfile> = picks
        .iter()
        .map(|name| profiles.iter().find(|p| p.name == *name).expect("profile"))
        .collect();
    let bundles: Vec<_> = selected
        .iter()
        .enumerate()
        .map(|(i, p)| {
            p.issue(
                &universe,
                0,
                &format!("probe{i}.sim"),
                Time::from_ymd(2024, 1, 1).expect("literal date is valid"),
                Time::from_ymd(2025, 1, 1).expect("literal date is valid"),
                &mut Drbg::from_u64(i as u64),
                false,
            )
        })
        .collect();

    let mut row = vec!["Automatic Certificate Management".to_string()];
    row.extend(selected.iter().map(|p| check(p.automated).to_string()));
    table.row(&row);

    let mut row = vec!["Provide Fullchain File".to_string()];
    row.extend(bundles.iter().map(|b| check(b.fullchain.is_some()).to_string()));
    table.row(&row);

    let mut row = vec!["Provide Ca-bundle File".to_string()];
    row.extend(bundles.iter().map(|b| check(b.ca_bundle.is_some()).to_string()));
    table.row(&row);

    let mut row = vec!["Provide Root Certificate".to_string()];
    row.extend(bundles.iter().map(|b| {
        let has_root = b
            .ca_bundle
            .as_ref()
            .map(|cb| cb.iter().any(|c| c.is_self_issued()))
            .unwrap_or(false);
        check(has_root).to_string()
    }));
    table.row(&row);

    let mut row = vec!["Compliant Issuance Order in Ca-bundle".to_string()];
    row.extend(bundles.iter().map(|b| {
        match &b.ca_bundle {
            None => "n/a".to_string(),
            Some(cb) => {
                // Compliant: first bundle cert is the leaf's direct issuer.
                let ok = cb.first().map(|c| *c == b.intermediate).unwrap_or(false);
                check(ok).to_string()
            }
        }
    }));
    table.row(&row);

    let mut row = vec!["Provide Certificate Installation Guide".to_string()];
    row.extend(selected.iter().map(|p| {
        match p.install_guide {
            InstallGuide::AllServers => "Y".to_string(),
            InstallGuide::ApacheIisOnly => "only Apache/IIS".to_string(),
            InstallGuide::None => "x".to_string(),
        }
    }));
    table.row(&row);

    println!("{}", table.render());
    println!(
        "paper Table 6: Let's Encrypt automates and ships fullchain; GoGetSSL, \
         cyber_Folks and Trustico ship the ca-bundle in REVERSE issuance order \
         (root first), which naive merges propagate into reversed server chains."
    );
}
