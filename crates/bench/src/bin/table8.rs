//! Regenerates paper Table 8: additional incomplete chains per root store,
//! with and without AIA support.
//!
//! "Additional" is relative to the unified-store + AIA baseline, exactly as
//! in the paper.
//!
//! `cargo run --release --bin table8 [domains]`

use ccc_bench::{domains_from_env, scan_corpus, CorpusSummary};
use ccc_core::IssuanceChecker;
use ccc_core::report::{TextTable, group_thousands, render_cache_stats};
use ccc_rootstore::RootProgram;

fn main() {
    let domains = domains_from_env();
    eprintln!("scanning {domains} synthetic domains…");
    let corpus = scan_corpus(domains);
    let checker = IssuanceChecker::new();
    let s = CorpusSummary::compute_with_checker(&corpus, &checker);

    let baseline = s.unified_incomplete_with_aia;
    let mut table = TextTable::new(
        "Table 8 — Additional incomplete chains per root store × AIA",
        &["Root Store", "Mozilla", "Chrome", "Microsoft", "Apple"],
    );
    let additional = |n: usize| -> String { group_thousands(n.saturating_sub(baseline)) };
    let mut with_aia = vec!["AIA Supported".to_string()];
    let mut without_aia = vec!["AIA Not Supported".to_string()];
    for program in RootProgram::ALL {
        let sc = &s.store_completeness[&program];
        with_aia.push(additional(sc.incomplete_with_aia));
        without_aia.push(additional(sc.incomplete_without_aia));
    }
    table.row(&with_aia);
    table.row(&without_aia);
    println!("{}", table.render());

    println!(
        "paper (Tranco 1M):      AIA supported:     66 | 66 | 5 | 4\n\
         paper (Tranco 1M):      AIA not supported: 225,608 | 225,608 | 225,538 | 225,360\n\
         baseline (unified store + AIA) incomplete here: {} of {}\n\
         scale note: paper counts are absolute over 906,336 chains; compare \
         rates — the shape to check is (a) tiny per-store differences when \
         AIA is on, (b) a jump of roughly a quarter of all chains when AIA \
         is off (terminal intermediates whose AKID cannot be matched to a \
         store SKID).",
        group_thousands(baseline),
        group_thousands(s.total),
    );
    eprintln!("{}", render_cache_stats(&checker.snapshot_stats()));
}
