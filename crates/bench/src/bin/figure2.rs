//! Regenerates paper Figure 2: the four server-side chain topology
//! examples, rendered as issuance graphs with their order analyses.
//!
//! `cargo run --release --bin figure2`

use ccc_core::{analyze_order, IssuanceChecker, TopologyGraph};
use ccc_testgen::scenarios::ScenarioSet;

fn main() {
    let set = ScenarioSet::new(5);
    let checker = IssuanceChecker::new();
    for scenario in [set.figure2a(), set.figure2b(), set.figure2c(), set.figure2d()] {
        let graph = TopologyGraph::build(&scenario.served, &checker);
        let order = analyze_order(&scenario.served, &checker);
        println!("{} — {}", scenario.name, scenario.description);
        println!("  served ({} certs):", scenario.served.len());
        for (i, cert) in scenario.served.iter().enumerate() {
            println!(
                "    [{i}] {}{}",
                cert.subject(),
                if cert.is_self_issued() { "  (self-signed)" } else { "" }
            );
        }
        println!("  graph: {}", graph.describe());
        println!(
            "  order analysis: duplicates={} irrelevant={} paths={} reversed_paths={} compliant={}",
            order.duplicates.total(),
            order.irrelevant,
            order.path_count,
            order.reversed_paths,
            order.is_compliant()
        );
        println!();
    }
    println!(
        "paper Figure 2: (a) compliant 4-cert chain; (b) webcanny.com's five stale\n\
         leaves; (c) USERTrust cross-sign creating two paths with a reversed\n\
         insertion; (d) archives.gov.tw's foreign hierarchy with a duplicate."
    );
}
