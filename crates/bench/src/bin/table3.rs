//! Regenerates paper Table 3: leaf certificate deployment classes.
//!
//! `cargo run --release --bin table3 [domains]`

use ccc_bench::{domains_from_env, scan_corpus, CorpusSummary};
use ccc_core::IssuanceChecker;
use ccc_core::report::{TextTable, count_pct, render_cache_stats};
use ccc_core::LeafPlacement;

fn main() {
    let domains = domains_from_env();
    eprintln!("scanning {domains} synthetic domains…");
    let corpus = scan_corpus(domains);
    let checker = IssuanceChecker::new();
    let s = CorpusSummary::compute_with_checker(&corpus, &checker);

    let paper: &[(&str, &str)] = &[
        ("Correctly Placed and Matched", "838,354 (92.5%)"),
        ("Correctly Placed but Mismatched", "62,536 (6.9%)"),
        ("Incorrectly Placed but Matched", "0 (~0%)"),
        ("Incorrectly Placed and Mismatched", "1 (~0%)"),
        ("Other", "5,445 (0.6%)"),
    ];

    let mut table = TextTable::new(
        "Table 3 — Leaf certificate deployment",
        &["Place/Match", "This run", "Paper (Tranco 1M)"],
    );
    for (class, paper_cell) in [
        LeafPlacement::CorrectlyPlacedMatched,
        LeafPlacement::CorrectlyPlacedMismatched,
        LeafPlacement::IncorrectlyPlacedMatched,
        LeafPlacement::IncorrectlyPlacedMismatched,
        LeafPlacement::Other,
    ]
    .iter()
    .zip(paper)
    {
        let count = s.placement.get(class).copied().unwrap_or(0);
        table.row(&[
            class.label().to_string(),
            count_pct(count, s.total),
            paper_cell.1.to_string(),
        ]);
    }
    println!("{}", table.render());
    eprintln!("{}", render_cache_stats(&checker.snapshot_stats()));
}
