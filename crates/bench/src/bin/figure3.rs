//! Regenerates paper Figure 3 / finding I-2: the assiste6.serpro.gov.br
//! long-list case that exceeds GnuTLS's 16-certificate input limit.
//!
//! `cargo run --release --bin figure3`

use ccc_core::builder::BuildContext;
use ccc_core::clients::client_profiles;
use ccc_core::report::TextTable;
use ccc_core::IssuanceChecker;
use ccc_testgen::scenarios::ScenarioSet;

fn main() {
    let set = ScenarioSet::new(5);
    let scenario = set.figure3();
    println!("{} — {}", scenario.name, scenario.description);
    println!("served list length: {} certificates\n", scenario.served.len());

    let checker = IssuanceChecker::new();
    let ctx = BuildContext {
        store: &set.store,
        aia: Some(&set.aia),
        cache: &[],
        now: set.now,
        checker: &checker,
    };
    let mut table = TextTable::new("Client verdicts", &["Client", "Verdict"]);
    for (kind, engine) in client_profiles() {
        let outcome = engine.process(&scenario.served, &ctx);
        table.row(&[
            kind.name().to_string(),
            match &outcome.verdict {
                Ok(()) => "accepted".into(),
                Err(e) => format!("REJECTED: {e}"),
            },
        ]);
    }
    println!("{}", table.render());
    println!(
        "paper I-2: GnuTLS limits the ORIGINAL LIST length to 16 (not the constructed\n\
         path), so junk-padded lists fail in GnuTLS alone — 10 real chains did."
    );
}
