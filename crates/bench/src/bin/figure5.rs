//! Regenerates paper Figure 5 / §6.2: two issuer candidates identical but
//! for validity — which one does each client put in the path?
//!
//! `cargo run --release --bin figure5`

use ccc_core::builder::BuildContext;
use ccc_core::clients::client_profiles;
use ccc_core::report::TextTable;
use ccc_core::IssuanceChecker;
use ccc_testgen::scenarios::ScenarioSet;

fn main() {
    let set = ScenarioSet::new(5);
    let (scenario, newer, older) = set.figure5();
    println!("{} — {}", scenario.name, scenario.description);
    let show = |c: &ccc_x509::Certificate| {
        let v = c.validity();
        format!("{} .. {}", v.not_before, v.not_after)
    };
    println!("candidate A (newer): {}", show(&newer));
    println!("candidate B (older): {}\n", show(&older));

    let checker = IssuanceChecker::new();
    let ctx = BuildContext {
        store: &set.store,
        aia: Some(&set.aia),
        cache: &[],
        now: set.now,
        checker: &checker,
    };
    let mut table = TextTable::new("Candidate selected", &["Client", "Selected", "Verdict"]);
    for (kind, engine) in client_profiles() {
        let outcome = engine.process(&scenario.served, &ctx);
        let selected = if outcome.path.contains(&newer) {
            "A (newer)"
        } else if outcome.path.contains(&older) {
            "B (older)"
        } else {
            "-"
        };
        table.row(&[
            kind.name().to_string(),
            selected.to_string(),
            if outcome.accepted() { "accepted".into() } else { format!("{:?}", outcome.verdict) },
        ]);
    }
    println!("{}", table.render());
    println!(
        "paper §6.2: the most recently issued candidate should be preferred (it\n\
         reflects the CA's current configuration) — VP2 clients do this; VP1\n\
         clients take the first valid candidate in served order."
    );
}
