//! Golden + determinism snapshot for the `ccc-obs` metrics layer.
//!
//! One test, alone in this file on purpose: integration tests share one
//! process per file, and the metrics registry is process-global — a
//! sibling test would pollute the deltas. The workload is the seeded
//! scan corpus, so the *stable* series (builder, netsim, pipeline
//! totals, span call counts, simulated-clock milliseconds) are exact
//! across machines and worker counts; volatile series (wall durations,
//! cache/verify-route splits) are excluded via `Snapshot::stable_only`.
//!
//! To regenerate after an intentional metric change:
//!
//! ```text
//! CCC_BLESS=1 cargo test -p ccc-bench --test metrics_snapshot
//! ```

use ccc_bench::{
    scan_corpus, touch_pipeline_metrics, CompliancePass, FaultPass, FaultScenario, LintPass,
    Pipeline,
};
use ccc_core::IssuanceChecker;
use ccc_obs::{render_json, render_prometheus, MetricsRegistry, Snapshot};
use std::path::PathBuf;

/// Above `PARALLEL_THRESHOLD` (256) so the 8-worker run actually forks.
const DOMAINS: usize = 300;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(name: &str, rendered: &str) {
    let path = golden_path(name);
    if std::env::var("CCC_BLESS").is_ok() {
        std::fs::create_dir_all(path.parent().expect("golden dir has parent"))
            .expect("create golden dir");
        std::fs::write(&path, rendered).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with CCC_BLESS=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        rendered,
        expected,
        "{name} drifted from its golden; re-bless with CCC_BLESS=1 if intentional"
    );
}

/// One fixed workload: a fused (compliance, lint) sweep plus a
/// one-scenario 10% fault sweep over the same seeded corpus.
fn run_workload(threads: usize) -> Snapshot {
    let baseline = MetricsRegistry::global().snapshot();
    let corpus = scan_corpus(DOMAINS);
    let checker = IssuanceChecker::new();
    let _ = Pipeline::new(threads).run(
        &corpus,
        &checker,
        (CompliancePass::new(), LintPass::new()),
    );
    let chaos_checker = IssuanceChecker::new();
    let scenario = FaultScenario::for_corpus(&corpus, 0.1);
    let _ = Pipeline::new(threads).run(&corpus, &chaos_checker, FaultPass::new(vec![scenario]));
    MetricsRegistry::global().snapshot().since(&baseline)
}

#[test]
fn stable_metrics_are_golden_and_thread_invariant() {
    // Register every family first so the snapshot schema is complete
    // regardless of which paths the workload takes.
    touch_pipeline_metrics();
    ccc_core::builder::touch_build_metrics();
    ccc_netsim::touch_fetch_metrics();
    let _ = ccc_crypto::verify_route_stats();

    let delta_1 = run_workload(1).stable_only();
    let prom_1 = render_prometheus(&delta_1);
    let json_1 = render_json(&delta_1);

    // CCC_THREADS determinism: the stable series of an identical workload
    // on 8 workers must be byte-identical to the single-worker run.
    let delta_8 = run_workload(8).stable_only();
    assert_eq!(
        prom_1,
        render_prometheus(&delta_8),
        "stable Prometheus series differ between 1 and 8 workers"
    );
    assert_eq!(
        json_1,
        render_json(&delta_8),
        "stable JSON series differ between 1 and 8 workers"
    );

    // The JSON render must parse with the in-tree no-serde parser.
    let parsed = ccc_lint::json::parse(&json_1).expect("metrics JSON parses");
    assert!(
        parsed.get("ccc_builder_builds_total").is_some(),
        "builder family missing from JSON dump"
    );

    // Sanity: the workload actually moved the core families.
    assert!(
        delta_1.counter("ccc_builder_builds_total") > 0,
        "no builds recorded"
    );
    assert!(
        delta_1.counter("ccc_netsim_fetch_attempts_total") > 0,
        "no fault-injected fetches recorded"
    );
    assert_eq!(
        delta_1.counter("ccc_pipeline_runs_total"),
        2,
        "expected exactly two pipeline sweeps"
    );

    check_golden("metrics_stable.prom", &prom_1);
    check_golden("metrics_stable.json", &json_1);
}
