//! Concurrency guarantees of the shared sharded [`IssuanceChecker`]:
//!
//! 1. Parallel corpus passes are *bit-identical* to the sequential pass,
//!    whatever the worker count — sharing one signature cache across
//!    threads must never change results, only save work.
//! 2. Hammering one checker from many threads performs each unique
//!    (issuer, subject) verification exactly once; every other lookup is
//!    either a hit or a coalesced wait (the old double-lock design
//!    recomputed in that window).

use ccc_bench::{scan_corpus, CorpusSummary, DifferentialSummary};
use ccc_core::IssuanceChecker;
use ccc_x509::CertificateFingerprint;
use std::collections::HashSet;

/// Thread counts exercised by the equivalence tests: degenerate (1),
/// odd/non-divisor (3), and more threads than this container has cores
/// (16).
const THREAD_COUNTS: [usize; 3] = [1, 3, 16];

#[test]
fn parallel_summary_is_bit_identical_to_sequential() {
    // 200 stays below the 256-domain parallelism threshold (all thread
    // counts take the sequential path); 272 is above it.
    for domains in [200usize, 272] {
        let corpus = scan_corpus(domains);
        let reference_checker = IssuanceChecker::new();
        let reference = CorpusSummary::compute_range(&corpus, &reference_checker, 0, domains);
        assert_eq!(reference.total, domains);
        for threads in THREAD_COUNTS {
            let checker = IssuanceChecker::new();
            let summary = CorpusSummary::compute_with_threads(&corpus, &checker, threads);
            assert_eq!(
                summary, reference,
                "parallel summary diverged (domains={domains}, threads={threads})"
            );
            // Counter invariants hold after workers are joined.
            let stats = checker.snapshot_stats();
            assert_eq!(stats.hits + stats.misses, stats.lookups);
            assert_eq!(stats.verifications + stats.coalesced_waits, stats.misses);
            assert_eq!(stats.verifications as usize, stats.entries);
        }
    }
}

#[test]
fn parallel_differential_is_bit_identical_to_sequential() {
    let domains = 272; // above the parallelism threshold
    let corpus = scan_corpus(domains);
    let reference_checker = IssuanceChecker::new();
    let reference =
        DifferentialSummary::compute_range(&corpus, &reference_checker, 0, domains);
    for threads in THREAD_COUNTS {
        let checker = IssuanceChecker::new();
        let summary = DifferentialSummary::compute_with_threads(&corpus, &checker, threads);
        assert_eq!(summary.report, reference.report, "threads={threads}");
        assert_eq!(
            summary.corpus_library_failures,
            reference.corpus_library_failures
        );
        assert_eq!(
            summary.corpus_browser_failures,
            reference.corpus_browser_failures
        );
        assert_eq!(summary.cause_examples, reference.cause_examples);
    }
}

#[test]
fn hammered_checker_verifies_each_unique_pair_exactly_once() {
    let corpus = scan_corpus(48);
    let observations = corpus.collect();
    // Every ordered (issuer?, subject?) pair within each served list,
    // queried repeatedly by every worker.
    let mut pairs = Vec::new();
    for obs in &observations {
        for a in &obs.served {
            for b in &obs.served {
                pairs.push((a.clone(), b.clone()));
            }
        }
    }
    assert!(pairs.len() > 100, "corpus too small to exercise the cache");
    let unique: HashSet<(CertificateFingerprint, CertificateFingerprint)> = pairs
        .iter()
        .map(|(a, b)| (a.fingerprint(), b.fingerprint()))
        .collect();

    const WORKERS: usize = 8;
    let checker = IssuanceChecker::new();
    ccc_mc::scope(|scope| {
        for t in 0..WORKERS {
            let checker = &checker;
            let pairs = &pairs;
            scope.spawn(move || {
                // Stagger each worker's starting offset so different
                // threads collide on the same keys at the same time.
                for (a, b) in pairs.iter().cycle().skip(t * 7).take(pairs.len()) {
                    std::hint::black_box(checker.signature_verifies(a, b));
                }
            });
        }
    });

    let stats = checker.snapshot_stats();
    assert_eq!(stats.lookups, (pairs.len() * WORKERS) as u64);
    assert_eq!(stats.hits + stats.misses, stats.lookups);
    // The core guarantee: zero duplicate verifications. Every miss beyond
    // the first per pair coalesced onto the in-flight computation.
    assert_eq!(
        stats.verifications,
        unique.len() as u64,
        "duplicate signature verifications occurred"
    );
    assert_eq!(stats.entries, unique.len());
    assert_eq!(stats.verifications + stats.coalesced_waits, stats.misses);
    assert_eq!(stats.saved(), stats.lookups - stats.verifications);
    assert!(stats.hit_rate() > 0.5, "hit rate {:.3}", stats.hit_rate());
}
