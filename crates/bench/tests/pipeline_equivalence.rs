//! Fused-pipeline equivalence guarantees (DESIGN.md §12):
//!
//! 1. Running the three analysis passes **fused** — one generation sweep,
//!    one shared checker, shared per-observation memo — is *bit-identical*
//!    to running each standalone `compute_with_threads` entry point with
//!    its own fresh checker, for every worker count.
//! 2. The guarantee holds on both sides of the 256-domain parallelism
//!    threshold and is seed-independent (property test).
//!
//! This is the contract that lets `chain-chaos matrix`/`lint`, the table
//! binaries, and the committed `BENCH_pipeline.json` snapshot use the
//! fused path while the golden outputs stay pinned to the standalone
//! numbers.

use ccc_bench::{
    scan_corpus, CompliancePass, CorpusSummary, DifferentialPass, DifferentialSummary, LintPass,
    Pipeline,
};
use ccc_core::IssuanceChecker;
use ccc_crypto::{set_verify_batch_policy, set_verify_table_policy, BatchPolicy, TablePolicy};
use ccc_lint::LintSummary;
use ccc_testgen::{Corpus, CorpusSpec};
use proptest::prelude::*;

/// Worker counts exercised: degenerate (1), odd/non-divisor (3), and more
/// workers than this container has cores (8).
const THREAD_COUNTS: [usize; 3] = [1, 3, 8];

/// Standalone reference summaries, each computed exactly the way the
/// one-pass `compute*` entry points do it: a fresh checker per analysis.
fn standalone(
    corpus: &Corpus,
    threads: usize,
) -> (CorpusSummary, DifferentialSummary, LintSummary) {
    let c1 = IssuanceChecker::new();
    let compliance = CorpusSummary::compute_with_threads(corpus, &c1, threads);
    let c2 = IssuanceChecker::new();
    let differential = DifferentialSummary::compute_with_threads(corpus, &c2, threads);
    let c3 = IssuanceChecker::new();
    let lint = LintSummary::compute_with_threads(corpus, &c3, threads);
    (compliance, differential, lint)
}

/// One fused sweep with all three passes registered.
fn fused(
    corpus: &Corpus,
    threads: usize,
) -> (CorpusSummary, DifferentialSummary, LintSummary) {
    let checker = IssuanceChecker::new();
    let ((c, d, l), stats) = Pipeline::new(threads).run(
        corpus,
        &checker,
        (CompliancePass::new(), DifferentialPass::new(), LintPass::new()),
    );
    assert_eq!(stats.passes, 3);
    (c.into_summary(), d.into_summary(), l.into_summary())
}

#[test]
fn fused_pipeline_is_bit_identical_to_standalone_passes() {
    // 200 stays below the 256-domain parallelism threshold (every thread
    // count takes the sequential path); 272 is above it, so the chunked
    // rank-range merge is exercised too.
    for domains in [200usize, 272] {
        let corpus = scan_corpus(domains);
        // The reference is thread-count-independent (guaranteed by
        // parallel_equivalence.rs), so compute it once at threads=1.
        let (ref_c, ref_d, ref_l) = standalone(&corpus, 1);
        assert_eq!(ref_c.total, domains);
        for threads in THREAD_COUNTS {
            let (fc, fd, fl) = fused(&corpus, threads);
            assert_eq!(fc, ref_c, "compliance diverged (domains={domains}, threads={threads})");
            assert_eq!(fd, ref_d, "differential diverged (domains={domains}, threads={threads})");
            assert_eq!(fl, ref_l, "lint diverged (domains={domains}, threads={threads})");
        }
    }
}

#[test]
fn fused_pipeline_matches_standalone_at_matching_thread_counts() {
    // Same comparison, but with the standalone side also parallel — the
    // configuration the CI job re-runs under CCC_THREADS=8.
    let corpus = scan_corpus(272);
    for threads in THREAD_COUNTS {
        let (ref_c, ref_d, ref_l) = standalone(&corpus, threads);
        let (fc, fd, fl) = fused(&corpus, threads);
        assert_eq!(fc, ref_c, "compliance diverged (threads={threads})");
        assert_eq!(fd, ref_d, "differential diverged (threads={threads})");
        assert_eq!(fl, ref_l, "lint diverged (threads={threads})");
    }
}

#[test]
fn verify_table_policy_never_changes_results() {
    // The verify hot/cold routing (per-key fixed-base tables vs Straus
    // multi-exp) is pure performance: forcing every verification down one
    // route must leave every summary bit-identical, fused and standalone,
    // at 1 and 8 workers. This is the in-process version of the CI job
    // that re-runs this binary under CCC_VERIFY_TABLES=always|never.
    //
    // Safe against the other tests in this binary: the policy only picks
    // routes, and every assertion here and elsewhere is verdict-level.
    let corpus = scan_corpus(272);
    set_verify_table_policy(TablePolicy::Auto);
    let reference = standalone(&corpus, 1);
    for policy in [TablePolicy::Never, TablePolicy::Always, TablePolicy::Auto] {
        set_verify_table_policy(policy);
        for threads in [1usize, 8] {
            assert_eq!(
                standalone(&corpus, threads),
                reference,
                "standalone summaries drifted under {policy:?} (threads={threads})"
            );
            assert_eq!(
                fused(&corpus, threads),
                reference,
                "fused summaries drifted under {policy:?} (threads={threads})"
            );
        }
    }
    set_verify_table_policy(TablePolicy::Auto);
}

#[test]
fn verify_batch_policy_never_changes_results() {
    // Deferred batched verification (the pipeline's prefetch flush plus
    // the Pippenger aggregate self-check) is pure performance, like the
    // table policy above: forcing it on or off must leave every summary
    // bit-identical, fused and standalone, at 1, 3, and 8 workers. This
    // is the in-process version of the CI job that re-runs this binary
    // under CCC_VERIFY_BATCH=off.
    //
    // Safe against the other tests in this binary for the same reason as
    // the table-policy test: the policy only decides *how* verdicts are
    // computed, and every assertion anywhere here is verdict-level.
    let corpus = scan_corpus(272);
    set_verify_batch_policy(BatchPolicy::Auto);
    let reference = standalone(&corpus, 1);
    for policy in [BatchPolicy::Off, BatchPolicy::On, BatchPolicy::Auto] {
        set_verify_batch_policy(policy);
        for threads in THREAD_COUNTS {
            assert_eq!(
                standalone(&corpus, threads),
                reference,
                "standalone summaries drifted under {policy:?} (threads={threads})"
            );
            assert_eq!(
                fused(&corpus, threads),
                reference,
                "fused summaries drifted under {policy:?} (threads={threads})"
            );
        }
    }
    set_verify_batch_policy(BatchPolicy::Auto);
}

// Seed-independence: whatever corpus the generator produces, fused and
// standalone agree. Small corpora keep the property test fast while still
// covering the interesting chain-defect variety.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn fused_equivalence_holds_for_arbitrary_seeds(seed in 0u64..10_000, domains in 40usize..90) {
        let corpus = Corpus::new(CorpusSpec::calibrated(seed, domains));
        let (ref_c, ref_d, ref_l) = standalone(&corpus, 1);
        let (fc, fd, fl) = fused(&corpus, 3);
        prop_assert_eq!(fc, ref_c);
        prop_assert_eq!(fd, ref_d);
        prop_assert_eq!(fl, ref_l);
    }
}
