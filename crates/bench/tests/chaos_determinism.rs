//! Chaos-pass guarantees (ISSUE 6 acceptance criteria):
//!
//! 1. **Thread invariance** — the [`ChaosSummary`] for a given corpus
//!    seed + fault-plan seed is identical for worker counts {1, 3, 8}:
//!    every fetch outcome is a pure function of (plan seed, URI, attempt)
//!    and latency runs on per-build simulated clocks, never wall time.
//! 2. **Zero-fault identity** — the baseline (rate 0.0) scenario counts
//!    exactly what plain sequential [`ChainEngine::process`] runs over
//!    the untouched [`AiaRepository`] produce: no retries, no simulated
//!    latency, no budget exhaustion.
//! 3. **Resilience split** — under heavy transient faults, retrying
//!    profiles (Chrome/Edge, 3 attempts) recover chains that the
//!    non-retrying CryptoAPI profile loses, and the recovery counter
//!    attributes them.

use ccc_bench::{scan_corpus, ChaosSummary, FaultPass, FaultScenario, Pipeline};
use ccc_core::clients::{client_profiles, ClientKind};
use ccc_core::leaf::cert_covers_domain;
use ccc_core::{BuildContext, IssuanceChecker};
use ccc_testgen::corpus::scan_time;
use ccc_testgen::Corpus;
use std::collections::BTreeMap;

/// Worker counts exercised: degenerate (1), odd/non-divisor (3), and more
/// workers than this container has cores (8).
const THREAD_COUNTS: [usize; 3] = [1, 3, 8];

fn chaos(corpus: &Corpus, scenarios: Vec<FaultScenario>, threads: usize) -> ChaosSummary {
    let checker = IssuanceChecker::new();
    let (pass, stats) = Pipeline::new(threads).run(corpus, &checker, FaultPass::new(scenarios));
    assert_eq!(stats.observations, corpus.spec.domains);
    pass.into_summary()
}

#[test]
fn chaos_summary_is_thread_invariant() {
    // 300 domains: above the 256-domain threshold, so workers really run.
    let corpus = scan_corpus(300);
    let reference = chaos(&corpus, FaultScenario::standard_sweep(&corpus), THREAD_COUNTS[0]);
    assert_eq!(reference.total, 300);
    for &threads in &THREAD_COUNTS[1..] {
        let summary = chaos(&corpus, FaultScenario::standard_sweep(&corpus), threads);
        assert_eq!(summary, reference, "threads={threads} diverged");
    }
}

#[test]
fn zero_fault_scenario_matches_plain_sequential_builds() {
    let corpus = scan_corpus(120);
    let summary = chaos(&corpus, vec![FaultScenario::for_corpus(&corpus, 0.0)], 1);

    // Reference: hand-rolled sequential sweep over the plain repository.
    let checker = IssuanceChecker::new();
    let cache = corpus.intermediate_cache();
    let clients = client_profiles();
    let mut passes: BTreeMap<ClientKind, usize> = BTreeMap::new();
    let mut attempts: BTreeMap<ClientKind, usize> = BTreeMap::new();
    for rank in 0..corpus.spec.domains {
        let obs = corpus.observation(rank);
        let covers = obs
            .served
            .first()
            .map(|leaf| cert_covers_domain(leaf, &obs.domain))
            .unwrap_or(false);
        let ctx = BuildContext {
            store: corpus.programs.unified(),
            aia: Some(&corpus.aia),
            cache: &cache,
            now: scan_time(),
            checker: &checker,
        };
        for (kind, engine) in &clients {
            let outcome = engine.process(&obs.served, &ctx);
            if outcome.accepted() && covers {
                *passes.entry(*kind).or_default() += 1;
            }
            *attempts.entry(*kind).or_default() += outcome.stats.aia_attempts;
            // The zero-fault transport never reports Transient, so the
            // retry loop must never have engaged.
            assert_eq!(outcome.stats.aia_retries, 0);
            assert_eq!(outcome.stats.sim_latency_ms, 0);
            assert!(!outcome.stats.aia_budget_exhausted);
        }
    }

    let baseline = &summary.scenarios[0];
    assert_eq!(baseline.fault_rate, 0.0);
    for kind in ClientKind::ALL {
        let cell = baseline.per_client[&kind];
        assert_eq!(cell.passes, passes[&kind], "{}", kind.name());
        assert_eq!(cell.aia_attempts, attempts[&kind], "{}", kind.name());
        assert_eq!(cell.recovered, 0);
        assert_eq!(cell.aia_retries, 0);
        assert_eq!(cell.sim_latency_ms, 0);
        assert_eq!(cell.budget_exhausted, 0);
    }
}

#[test]
fn retrying_clients_recover_transient_chains() {
    let corpus = scan_corpus(400);
    let scenarios = vec![
        FaultScenario::for_corpus(&corpus, 0.0),
        FaultScenario::for_corpus(&corpus, 1.0),
    ];
    let summary = chaos(&corpus, scenarios, 2);

    let baseline = &summary.scenarios[0];
    let faulty = &summary.scenarios[1];
    let chrome = faulty.per_client[&ClientKind::Chrome];
    let cryptoapi = faulty.per_client[&ClientKind::CryptoApi];

    // Scenarios are independent: the baseline is untouched by the faulty
    // transport running in the same sweep.
    assert_eq!(baseline.per_client[&ClientKind::Chrome].aia_retries, 0);
    assert_eq!(baseline.per_client[&ClientKind::Chrome].sim_latency_ms, 0);

    // The I-4 split: Chrome's 3 attempts ride out every transient URI
    // (plans cap transient failures at 2), CryptoAPI's single shot loses
    // all of them. `recovered` attributes exactly those rescued chains.
    assert!(chrome.aia_retries > 0, "fault rate 1.0 must force retries");
    assert!(chrome.recovered > 0, "retries must rescue at least one chain");
    assert!(
        chrome.passes > cryptoapi.passes,
        "retrying Chrome ({}) must beat non-retrying CryptoAPI ({})",
        chrome.passes,
        cryptoapi.passes
    );
    assert_eq!(cryptoapi.aia_retries, 0);
    assert_eq!(cryptoapi.recovered, 0);
    assert!(
        chrome.passes - cryptoapi.passes >= chrome.recovered.min(1),
        "the pass gap must cover the recovered chains"
    );
    // Latency only accrues where faults exist.
    assert!(chrome.sim_latency_ms > 0);

    // The rendered table carries the headline counters.
    let table = summary.render_table();
    assert!(table.contains("Chrome"), "{table}");
    assert!(table.contains("recovered"), "{table}");
    assert!(table.contains("fault 100%"), "{table}");
}
