//! Criterion benchmarks for chain construction: each client profile on
//! compliant, reversed, long, and multi-path chains.

use ccc_asn1::Time;
use ccc_core::builder::BuildContext;
use ccc_core::clients::ClientKind;
use ccc_core::IssuanceChecker;
use ccc_crypto::{Group, KeyPair};
use ccc_netsim::AiaRepository;
use ccc_rootstore::{CaUniverse, RootPrograms};
use ccc_x509::{Certificate, CertificateBuilder, DistinguishedName};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

struct Env {
    universe: CaUniverse,
    programs: RootPrograms,
    aia: AiaRepository,
}

fn env() -> Env {
    let universe = CaUniverse::default_with_seed(1234);
    let programs = RootPrograms::from_universe(&universe);
    let aia = AiaRepository::new(universe.aia_publications());
    Env {
        universe,
        programs,
        aia,
    }
}

fn compliant_chain(env: &Env) -> Vec<Certificate> {
    let int = &env.universe.roots[0].intermediates[0];
    let kp = KeyPair::from_seed(Group::simulation_256(), b"bench-compliant");
    let leaf = CertificateBuilder::leaf_profile("bench.sim").issued_by(
        &kp.public,
        int.cert.subject().clone(),
        &int.keypair,
    );
    vec![leaf, int.cert.clone()]
}

fn reversed_chain(env: &Env) -> Vec<Certificate> {
    let mut served = compliant_chain(env);
    served.insert(1, env.universe.roots[0].cert.clone());
    served
}

fn long_chain(env: &Env, total: usize) -> Vec<Certificate> {
    let g = Group::simulation_256();
    let root = &env.universe.roots[0];
    let mut issuer_dn = root.cert.subject().clone();
    let mut issuer_kp = root.keypair.clone();
    let mut tower = Vec::new();
    for depth in 0..total.saturating_sub(2) {
        let kp = KeyPair::from_seed(g, format!("bench-long/{depth}").as_bytes());
        let dn = DistinguishedName::cn(format!("Bench Deep {depth}"));
        tower.push(CertificateBuilder::ca_profile(dn.clone()).issued_by(
            &kp.public,
            issuer_dn.clone(),
            &issuer_kp,
        ));
        issuer_dn = dn;
        issuer_kp = kp;
    }
    let leaf_kp = KeyPair::from_seed(g, b"bench-long-leaf");
    let leaf = CertificateBuilder::leaf_profile("benchlong.sim").issued_by(
        &leaf_kp.public,
        issuer_dn,
        &issuer_kp,
    );
    let mut served = vec![leaf];
    served.extend(tower.into_iter().rev());
    served.push(root.cert.clone());
    served
}

fn bench_clients(c: &mut Criterion) {
    let env = env();
    let checker = IssuanceChecker::new();
    let now = Time::from_ymd(2024, 7, 1).expect("literal date is valid");
    let cases = [
        ("compliant_2", compliant_chain(&env)),
        ("reversed_3", reversed_chain(&env)),
        ("long_10", long_chain(&env, 10)),
    ];
    let mut group = c.benchmark_group("construction");
    for (case_name, served) in &cases {
        for kind in [ClientKind::OpenSsl, ClientKind::MbedTls, ClientKind::Chrome] {
            let engine = kind.engine();
            group.bench_with_input(
                BenchmarkId::new(*case_name, kind.name()),
                served,
                |b, served| {
                    b.iter(|| {
                        let ctx = BuildContext {
                            store: env.programs.unified(),
                            aia: Some(&env.aia),
                            cache: &[],
                            now,
                            checker: &checker,
                        };
                        std::hint::black_box(engine.process(served, &ctx))
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_cold_vs_warm_cache(c: &mut Criterion) {
    // The IssuanceChecker memoizes signature checks: the second pass over
    // the same chain should be much cheaper.
    let env = env();
    let served = long_chain(&env, 10);
    let now = Time::from_ymd(2024, 7, 1).expect("literal date is valid");
    let engine = ClientKind::Chrome.engine();
    let mut group = c.benchmark_group("signature_memoization");
    group.sample_size(20);
    group.bench_function("cold_checker", |b| {
        b.iter(|| {
            let checker = IssuanceChecker::new();
            let ctx = BuildContext {
                store: env.programs.unified(),
                aia: Some(&env.aia),
                cache: &[],
                now,
                checker: &checker,
            };
            std::hint::black_box(engine.process(&served, &ctx))
        })
    });
    let warm = IssuanceChecker::new();
    {
        let ctx = BuildContext {
            store: env.programs.unified(),
            aia: Some(&env.aia),
            cache: &[],
            now,
            checker: &warm,
        };
        engine.process(&served, &ctx);
    }
    group.bench_function("warm_checker", |b| {
        b.iter(|| {
            let ctx = BuildContext {
                store: env.programs.unified(),
                aia: Some(&env.aia),
                cache: &[],
                now,
                checker: &warm,
            };
            std::hint::black_box(engine.process(&served, &ctx))
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_clients, bench_cold_vs_warm_cache
}
criterion_main!(benches);
