//! Modular-exponentiation stack comparison: schoolbook square-and-multiply
//! (`modpow_naive`) vs the Montgomery/fixed-window path (`MontgomeryCtx`)
//! vs the fixed-base generator tables (`FixedBaseTable`, the `g^k` path
//! used by keygen and signing).
//!
//! The operands mirror the crypto crate's real workload: exponentiation
//! modulo the group prime with exponents the width of the subgroup order
//! (256-bit for `sim256`, 1536-bit group with ~1530-bit order for
//! `rfc3526`). All three paths must produce identical residues — asserted
//! here before timing so a broken optimization can't "win".

use ccc_bignum::{modpow_naive, FixedBaseTable, MontgomeryCtx, Uint};
use ccc_crypto::{Drbg, Group};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

struct Case {
    label: &'static str,
    group: &'static Group,
}

fn cases() -> Vec<Case> {
    vec![
        Case {
            label: "sim256",
            group: Group::simulation_256(),
        },
        Case {
            label: "rfc3526_1536",
            group: Group::rfc3526_1536(),
        },
    ]
}

/// Deterministic exponents below the subgroup order.
fn exponents(group: &Group, n: usize) -> Vec<Uint> {
    let mut drbg = Drbg::from_u64(0xbe9c_4a11);
    (0..n)
        .map(|_| {
            Uint::from_bytes_be(&drbg.bytes(group.scalar_len))
                .rem(&group.q)
                .expect("q > 0")
        })
        .collect()
}

fn bench_modexp(c: &mut Criterion) {
    for case in cases() {
        let group = case.group;
        let ctx = MontgomeryCtx::new(&group.p).expect("group prime is odd");
        let table = FixedBaseTable::new(&ctx, &group.g, group.q.bit_len());
        let exps = exponents(group, 8);

        // Cross-check all three paths before timing anything.
        for e in &exps {
            let naive = modpow_naive(&group.g, e, &group.p).expect("p is non-zero");
            assert_eq!(ctx.modpow(&group.g, e), naive);
            assert_eq!(table.pow(&ctx, e), naive);
        }

        let mut grp = c.benchmark_group(format!("modexp/{}", case.label));
        grp.sample_size(10);
        grp.bench_with_input(BenchmarkId::from_parameter("naive"), &exps, |b, exps| {
            b.iter(|| {
                for e in exps {
                    std::hint::black_box(modpow_naive(&group.g, e, &group.p).expect("p is non-zero"));
                }
            })
        });
        grp.bench_with_input(
            BenchmarkId::from_parameter("montgomery_window4"),
            &exps,
            |b, exps| {
                b.iter(|| {
                    for e in exps {
                        std::hint::black_box(ctx.modpow(&group.g, e));
                    }
                })
            },
        );
        grp.bench_with_input(
            BenchmarkId::from_parameter("fixed_base_table"),
            &exps,
            |b, exps| {
                b.iter(|| {
                    for e in exps {
                        std::hint::black_box(table.pow(&ctx, e));
                    }
                })
            },
        );
        grp.finish();
    }
}

criterion_group!(benches, bench_modexp);
criterion_main!(benches);
