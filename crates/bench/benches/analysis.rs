//! Criterion benchmarks for the server-side analyses: topology graphs,
//! order analysis, completeness, and corpus generation throughput.

use ccc_core::{analyze_order, CompletenessAnalyzer, IssuanceChecker, TopologyGraph};
use ccc_testgen::{Corpus, CorpusSpec, ObservationStore};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

const ANALYSIS_CHAINS: usize = 64;

fn bench_analysis(c: &mut Criterion) {
    let corpus = Corpus::new(CorpusSpec::calibrated(55, ANALYSIS_CHAINS));
    // Bounded reuse buffer instead of an eager `collect()`: generation
    // runs once (all later `get`s hit the ring), and memory stays
    // O(capacity) — the same discipline the fused pipeline uses.
    let mut store = ObservationStore::new(&corpus, ANALYSIS_CHAINS);
    let checker = IssuanceChecker::new();
    let analyzer =
        CompletenessAnalyzer::new(&checker, corpus.programs.unified(), Some(&corpus.aia));
    // Warm the signature cache so the benches measure analysis logic.
    for rank in 0..ANALYSIS_CHAINS {
        let _ = analyzer.analyze(&store.get(rank).served);
    }

    let mut group = c.benchmark_group("analysis");
    group.throughput(Throughput::Elements(ANALYSIS_CHAINS as u64));
    group.bench_function("topology_build_64_chains", |b| {
        b.iter(|| {
            for rank in 0..ANALYSIS_CHAINS {
                std::hint::black_box(TopologyGraph::build(&store.get(rank).served, &checker));
            }
        })
    });
    group.bench_function("order_analysis_64_chains", |b| {
        b.iter(|| {
            for rank in 0..ANALYSIS_CHAINS {
                std::hint::black_box(analyze_order(&store.get(rank).served, &checker));
            }
        })
    });
    group.bench_function("completeness_64_chains", |b| {
        b.iter(|| {
            for rank in 0..ANALYSIS_CHAINS {
                std::hint::black_box(analyzer.analyze(&store.get(rank).served));
            }
        })
    });
    group.finish();
}

/// Lock-contention comparison: every worker thread hammers ONE shared
/// checker over a warmed cache, so per-lookup lock overhead dominates.
/// `single_mutex` is `with_shards(1)` (the old design's locking); the
/// sharded default should beat it clearly on multi-core hosts.
fn bench_shared_cache_contention(c: &mut Criterion) {
    let corpus = Corpus::new(CorpusSpec::calibrated(57, 512));
    // Eager materialization is deliberate here: every worker thread reads
    // the SAME observation slice concurrently, which a mutable ring
    // buffer cannot serve. O(corpus) is fine at 512 chains.
    let observations = corpus.collect();
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8);

    let mut group = c.benchmark_group("shared_cache");
    group.throughput(Throughput::Elements(observations.len() as u64));
    for (label, shards) in [("single_mutex", 1usize), ("sharded_64", 64)] {
        group.bench_with_input(
            BenchmarkId::new(format!("corpus_pass_{threads}t"), label),
            &shards,
            |b, &shards| {
                let checker = IssuanceChecker::with_shards(shards);
                // Warm the cache: measure lookup/lock cost, not Schnorr.
                for obs in &observations {
                    let _ = TopologyGraph::build(&obs.served, &checker);
                }
                b.iter(|| {
                    ccc_mc::scope(|scope| {
                        for t in 0..threads {
                            let checker = &checker;
                            let observations = &observations;
                            scope.spawn(move || {
                                for obs in observations.iter().skip(t).step_by(threads) {
                                    std::hint::black_box(TopologyGraph::build(
                                        &obs.served,
                                        checker,
                                    ));
                                }
                            });
                        }
                    });
                })
            },
        );
    }
    group.finish();
}

fn bench_corpus_generation(c: &mut Criterion) {
    let corpus = Corpus::new(CorpusSpec::calibrated(56, 1_000_000));
    let mut group = c.benchmark_group("corpus");
    group.sample_size(10);
    group.throughput(Throughput::Elements(32));
    group.bench_function("generate_32_observations", |b| {
        let mut rank = 0usize;
        b.iter(|| {
            for _ in 0..32 {
                std::hint::black_box(corpus.observation(rank % 1_000_000));
                rank += 1;
            }
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_analysis, bench_shared_cache_contention, bench_corpus_generation
}
criterion_main!(benches);
