//! Schnorr verification route comparison: the legacy single-shot path
//! (generic windowed `y^(q-e)` next to the fixed-base `g^s`), the cold
//! Straus joint multi-exponentiation, and the hot per-key fixed-base
//! route.
//!
//! The operands are real signatures over the two built-in groups, with
//! deterministic messages so runs are comparable. All routes must return
//! `true` on every input — asserted before timing so a broken route can't
//! "win" — and the hot route's table build is paid *outside* the timed
//! region, matching production where promotion amortizes it across a CA
//! key's lifetime.

use ccc_bignum::{MontgomeryCtx, Uint};
use ccc_crypto::{Drbg, Group, KeyPair, Signature, VerifyRoute};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

struct Case {
    label: &'static str,
    group: &'static Group,
}

fn cases() -> Vec<Case> {
    vec![
        Case {
            label: "sim256",
            group: Group::simulation_256(),
        },
        Case {
            label: "rfc3526_1536",
            group: Group::rfc3526_1536(),
        },
    ]
}

/// One CA-style key plus deterministic signatures to verify against it.
fn workload(group: &'static Group, n: usize) -> (KeyPair, Vec<(Vec<u8>, Signature)>) {
    let kp = KeyPair::from_seed(group, b"bench-verify-ca-key");
    let mut drbg = Drbg::from_u64(0xbe9c_4a11);
    let sigs = (0..n)
        .map(|_| {
            let message = drbg.bytes(48);
            let sig = kp.private.sign(&message);
            (message, sig)
        })
        .collect();
    (kp, sigs)
}

/// The pre-amortization verification: fixed-base `g^s` alongside a generic
/// 4-bit-window `y^(q-e)` with no per-key state (what `verify` did before
/// the intern registry existed). Kept here as the baseline the routes are
/// judged against.
fn verify_legacy(kp: &KeyPair, message: &[u8], sig: &Signature) -> bool {
    let group = kp.public.group();
    if sig.s.len() != group.scalar_len {
        return false;
    }
    let s = Uint::from_bytes_be(&sig.s);
    if s >= group.q {
        return false;
    }
    let e_scalar = Uint::from_bytes_be(&sig.e).rem(&group.q).expect("q > 0");
    let neg_e = group.q.checked_sub(&e_scalar).expect("e < q");
    let ctx = MontgomeryCtx::new(&group.p).expect("p odd");
    let gs = ctx.to_montgomery(&group.pow_g(&s));
    let y = ctx.to_montgomery(&Uint::from_bytes_be(kp.public.as_bytes()));
    let ye = ctx.pow_mont(&y, &neg_e);
    let r = ctx.from_montgomery(&ctx.mul(&gs, &ye));
    let r_bytes = match r.to_bytes_be_padded(group.element_len) {
        Some(b) => b,
        None => return false,
    };
    use ccc_crypto::sha256;
    let mut buf = r_bytes;
    buf.extend_from_slice(message);
    sha256(&buf) == sig.e
}

fn bench_verify(c: &mut Criterion) {
    for case in cases() {
        let group = case.group;
        let (kp, sigs) = workload(group, 4);

        // Cross-check every route agrees (and accepts) before timing.
        for (message, sig) in &sigs {
            assert!(verify_legacy(&kp, message, sig));
            assert!(kp.public.verify_via(VerifyRoute::MultiExp, message, sig));
            assert!(kp.public.verify_via(VerifyRoute::FixedBase, message, sig));
        }

        let mut grp = c.benchmark_group(format!("verify/{}", case.label));
        grp.sample_size(10);
        grp.bench_with_input(BenchmarkId::from_parameter("legacy_two_pows"), &sigs, |b, sigs| {
            b.iter(|| {
                for (message, sig) in sigs {
                    std::hint::black_box(verify_legacy(&kp, message, sig));
                }
            })
        });
        grp.bench_with_input(BenchmarkId::from_parameter("cold_multiexp"), &sigs, |b, sigs| {
            b.iter(|| {
                for (message, sig) in sigs {
                    std::hint::black_box(kp.public.verify_via(
                        VerifyRoute::MultiExp,
                        message,
                        sig,
                    ));
                }
            })
        });
        // First hot call above already built the per-key table; the timed
        // region measures steady-state lookups only.
        grp.bench_with_input(BenchmarkId::from_parameter("hot_fixed_base"), &sigs, |b, sigs| {
            b.iter(|| {
                for (message, sig) in sigs {
                    std::hint::black_box(kp.public.verify_via(
                        VerifyRoute::FixedBase,
                        message,
                        sig,
                    ));
                }
            })
        });
        grp.finish();
    }
}

criterion_group!(benches, bench_verify);
criterion_main!(benches);
