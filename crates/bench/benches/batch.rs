//! Batched Schnorr verification: `verify_batch` throughput per signature
//! across batch sizes, next to the per-signature hot and cold routes it
//! amortizes.
//!
//! The operands are real signatures from one CA-style key (the corpus
//! shape: few signers, many certificates) with deterministic messages so
//! runs are comparable. Batch verdicts are asserted identical to
//! per-signature `verify` before any timing — a broken aggregate can't
//! "win" — and the key's table promotion is paid outside the timed
//! region, like the hot route in `benches/verify.rs`.

use ccc_crypto::batch::{verify_batch, BatchItem};
use ccc_crypto::{Drbg, Group, KeyPair, Signature, VerifyRoute};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

struct Case {
    label: &'static str,
    group: &'static Group,
    /// Batch sizes to sweep (the 1536-bit group keeps the list short so
    /// `--test` smoke runs stay fast).
    sizes: &'static [usize],
}

fn cases() -> Vec<Case> {
    vec![
        Case {
            label: "sim256",
            group: Group::simulation_256(),
            sizes: &[1, 4, 16, 64, 256],
        },
        Case {
            label: "rfc3526_1536",
            group: Group::rfc3526_1536(),
            sizes: &[16, 64],
        },
    ]
}

/// One CA-style key plus deterministic signatures to verify against it.
fn workload(group: &'static Group, n: usize) -> (KeyPair, Vec<(Vec<u8>, Signature)>) {
    let kp = KeyPair::from_seed(group, b"bench-batch-ca-key");
    let mut drbg = Drbg::from_u64(0x0ba7_c4ed);
    let sigs = (0..n)
        .map(|_| {
            let message = drbg.bytes(48);
            let sig = kp.private.sign(&message);
            (message, sig)
        })
        .collect();
    (kp, sigs)
}

fn bench_batch(c: &mut Criterion) {
    for case in cases() {
        let max = *case.sizes.iter().max().expect("sizes non-empty");
        let (kp, sigs) = workload(case.group, max);
        let items: Vec<BatchItem<'_>> = sigs
            .iter()
            .map(|(m, s)| (&kp.public, m.as_slice(), s))
            .collect();

        // Correctness gate: the batch agrees with per-signature verify on
        // every input (this also promotes the key, so the timed region is
        // steady-state hot like production CA keys).
        let out = verify_batch(&items);
        for (i, (message, sig)) in sigs.iter().enumerate() {
            assert!(kp.public.verify(message, sig), "scalar reject at {i}");
            assert!(out.verdicts[i], "batch reject at {i}");
        }
        assert!(out.healed.is_empty(), "aggregate drift outside fault tests");

        let mut grp = c.benchmark_group(format!("batch/{}", case.label));
        grp.sample_size(10);
        // Per-signature baselines the batch is judged against.
        grp.throughput(Throughput::Elements(1));
        grp.bench_function(BenchmarkId::from_parameter("route_cold_multiexp"), |b| {
            let (message, sig) = &sigs[0];
            b.iter(|| {
                std::hint::black_box(kp.public.verify_via(VerifyRoute::MultiExp, message, sig))
            })
        });
        grp.bench_function(BenchmarkId::from_parameter("route_hot_fixed_base"), |b| {
            let (message, sig) = &sigs[0];
            b.iter(|| {
                std::hint::black_box(kp.public.verify_via(VerifyRoute::FixedBase, message, sig))
            })
        });
        for &size in case.sizes {
            grp.throughput(Throughput::Elements(size as u64));
            grp.bench_with_input(
                BenchmarkId::from_parameter(format!("verify_batch_{size}")),
                &items[..size],
                |b, items| b.iter(|| std::hint::black_box(verify_batch(items))),
            );
        }
        grp.finish();
    }
}

criterion_group!(benches, bench_batch);
criterion_main!(benches);
