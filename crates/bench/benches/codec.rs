//! Criterion benchmarks for the substrate codecs and crypto: DER
//! encode/parse, TLS Certificate-message framing, SHA-256, and Schnorr
//! sign/verify.

use ccc_crypto::{sha256, Group, KeyPair};
use ccc_netsim::tlsmsg;
use ccc_x509::{Certificate, CertificateBuilder, DistinguishedName};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn test_cert() -> Certificate {
    let kp = KeyPair::from_seed(Group::simulation_256(), b"codec-bench");
    CertificateBuilder::ca_profile(DistinguishedName::cn_o("Codec Bench CA", "bench"))
        .self_signed(&kp)
}

fn bench_der(c: &mut Criterion) {
    let cert = test_cert();
    let der = cert.to_der().to_vec();
    let mut group = c.benchmark_group("der");
    group.throughput(Throughput::Bytes(der.len() as u64));
    group.bench_function("parse_certificate", |b| {
        b.iter(|| Certificate::from_der(std::hint::black_box(&der)).expect("valid DER"))
    });
    group.bench_function("encode_tbs", |b| {
        b.iter(|| std::hint::black_box(cert.tbs().to_der()))
    });
    group.finish();
}

fn bench_tls_framing(c: &mut Criterion) {
    let cert = test_cert();
    let chain = vec![cert.clone(), cert.clone(), cert];
    let msg = tlsmsg::encode_tls12(&chain).expect("chain fits TLS framing");
    let mut group = c.benchmark_group("tls_framing");
    group.throughput(Throughput::Bytes(msg.len() as u64));
    group.bench_function("encode_tls12", |b| {
        b.iter(|| tlsmsg::encode_tls12(std::hint::black_box(&chain)).expect("chain fits TLS framing"))
    });
    group.bench_function("decode_tls12", |b| {
        b.iter(|| tlsmsg::decode_tls12(std::hint::black_box(&msg)).expect("valid framing"))
    });
    group.finish();
}

fn bench_crypto(c: &mut Criterion) {
    let mut group = c.benchmark_group("crypto");
    let data_1k = vec![0xa5u8; 1024];
    group.throughput(Throughput::Bytes(1024));
    group.bench_function("sha256_1k", |b| {
        b.iter(|| sha256(std::hint::black_box(&data_1k)))
    });
    group.finish();

    let mut group = c.benchmark_group("schnorr");
    let kp = KeyPair::from_seed(Group::simulation_256(), b"schnorr-bench");
    let msg = b"benchmark message for schnorr signatures";
    let sig = kp.private.sign(msg);
    group.bench_function("sign_sim256", |b| {
        b.iter(|| std::hint::black_box(kp.private.sign(msg)))
    });
    group.bench_function("verify_sim256", |b| {
        b.iter(|| assert!(kp.public.verify(msg, std::hint::black_box(&sig))))
    });
    let kp_big = KeyPair::from_seed(Group::rfc3526_1536(), b"schnorr-bench-big");
    let sig_big = kp_big.private.sign(msg);
    group.sample_size(10);
    group.bench_function("verify_rfc3526_1536", |b| {
        b.iter(|| assert!(kp_big.public.verify(msg, std::hint::black_box(&sig_big))))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_der, bench_tls_framing, bench_crypto
}
criterion_main!(benches);
