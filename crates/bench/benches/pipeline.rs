//! Criterion benchmark for the fused analysis pipeline: one
//! single-generation sweep fanning to three passes vs. three sequential
//! standalone sweeps, each regenerating the corpus and verifying leaf
//! signatures from a cold cache.
//!
//! This is the microbenchmark counterpart of the committed
//! `BENCH_pipeline.json` snapshot (`perf_snapshot --pipeline`), at a
//! smaller corpus so `cargo bench --bench pipeline -- --test` stays
//! cheap in CI.

use ccc_bench::{
    CompliancePass, CorpusSummary, DifferentialPass, DifferentialSummary, LintPass, Pipeline,
};
use ccc_core::IssuanceChecker;
use ccc_lint::LintSummary;
use ccc_testgen::{Corpus, CorpusSpec};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

/// Small corpus: large enough that generation cost dominates per-pass
/// bookkeeping, small enough for bench smoke runs.
const DOMAINS: usize = 200;
const SEED: u64 = 833;

fn bench_fused_vs_sequential(c: &mut Criterion) {
    let corpus = Corpus::new(CorpusSpec::calibrated(SEED, DOMAINS));
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.throughput(Throughput::Elements(DOMAINS as u64));

    // Three standalone sweeps, each with a fresh checker: every pass pays
    // full observation generation + leaf signature verification.
    group.bench_function("sequential_3_passes", |b| {
        b.iter(|| {
            let c1 = IssuanceChecker::new();
            let compliance = CorpusSummary::compute_with_checker(&corpus, &c1);
            let c2 = IssuanceChecker::new();
            let differential = DifferentialSummary::compute_with_checker(&corpus, &c2);
            let c3 = IssuanceChecker::new();
            let lint = LintSummary::compute_with_checker(&corpus, &c3);
            std::hint::black_box((compliance, differential, lint))
        })
    });

    // One fused sweep: observations generated once, one shared cache.
    group.bench_function("fused_3_passes", |b| {
        b.iter(|| {
            let checker = IssuanceChecker::new();
            let ((compliance, differential, lint), stats) = Pipeline::from_env().run(
                &corpus,
                &checker,
                (CompliancePass::new(), DifferentialPass::new(), LintPass::new()),
            );
            std::hint::black_box((
                compliance.into_summary(),
                differential.into_summary(),
                lint.into_summary(),
                stats,
            ))
        })
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_fused_vs_sequential
}
criterion_main!(benches);
