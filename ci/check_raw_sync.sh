#!/usr/bin/env bash
# Raw-sync guard: the crates wired into the ccc-mc model checker must
# route every lock, once-cell, shimmed atomic, and thread spawn through
# the ccc-mc shim layer (crates/mc). A raw std primitive in a wired
# crate is invisible to the cooperative scheduler, silently shrinking
# the state space the model tests claim to explore exhaustively — so CI
# fails on any such use.
#
# Exceptions (e.g. a test-harness lock that must NOT become a model
# object, or an atomic width the shim layer does not provide) go in
# ci/raw_sync_allowlist.txt with a justification comment.
#
# Usage: ci/check_raw_sync.sh   (run from anywhere; exits non-zero on
# violations and prints each offending line).
set -euo pipefail
cd "$(dirname "$0")/.."

# Crates whose concurrency is model-checked. crates/mc itself is the
# shim layer and is intentionally exempt. crates/obs is wired because
# its registry lock and metric atomics sit on the hot paths the model
# tests explore (cache fills, batched verifies bump obs counters).
WIRED=(crates/crypto crates/core crates/lint crates/bench crates/obs)

# Banned constructs: direct std lock/once types (path or braced import),
# std thread spawn/scope, and std atomics of the widths ccc-mc shims.
PATTERN='std::sync::(Mutex|RwLock|OnceLock)'
PATTERN+='|use std::sync::\{[^}]*(Mutex|RwLock|OnceLock)'
PATTERN+='|std::thread::(spawn|scope)'
PATTERN+='|std::sync::atomic::Atomic'
PATTERN+='|use std::sync::atomic::\{[^}]*Atomic'

ALLOWLIST=ci/raw_sync_allowlist.txt

hits=$(grep -rnE --include='*.rs' "$PATTERN" "${WIRED[@]}" || true)

violations=0
while IFS= read -r hit; do
    [ -z "$hit" ] && continue
    file=${hit%%:*}
    rest=${hit#*:}
    content=${rest#*:}
    # Comment lines may legitimately mention the banned names (shim
    # documentation does); only code counts.
    trimmed=${content#"${content%%[![:space:]]*}"}
    case "$trimmed" in
        //*) continue ;;
    esac
    allowed=0
    while IFS= read -r entry; do
        case "$entry" in '' | '#'*) continue ;; esac
        entry_file=${entry%%[[:space:]]*}
        entry_re=${entry#"$entry_file"}
        entry_re=${entry_re#"${entry_re%%[![:space:]]*}"}
        if [ "$file" = "$entry_file" ]; then
            if [ -z "$entry_re" ] || printf '%s' "$content" | grep -qE "$entry_re"; then
                allowed=1
                break
            fi
        fi
    done <"$ALLOWLIST"
    if [ "$allowed" -eq 0 ]; then
        echo "raw std sync primitive in ccc-mc-wired crate: $hit" >&2
        violations=$((violations + 1))
    fi
done <<<"$hits"

if [ "$violations" -gt 0 ]; then
    echo "check_raw_sync: $violations violation(s); use the ccc-mc shims (crates/mc) or add a justified entry to $ALLOWLIST" >&2
    exit 1
fi
echo "check_raw_sync: OK (wired crates: ${WIRED[*]})"
