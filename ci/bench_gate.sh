#!/usr/bin/env sh
# Batched-verification perf regression gate (DESIGN.md §16).
#
# Compares the speedup ratios in a freshly generated `perf_snapshot
# --batch` JSON against the committed BENCH_batch.json. Absolute ns/sig
# numbers are host-dependent and deliberately not gated; the *ratios*
# (batch route vs the cold/hot per-signature routes, measured
# interleaved in the same process on the same host) are portable across
# machines, so a fresh ratio collapsing far below the committed one
# means the batch route itself regressed, not the runner.
#
# Usage: ci/bench_gate.sh <fresh.json> [committed.json] [tolerance]
#
#   tolerance — each fresh ratio must be >= committed ratio * tolerance.
#   Default 0.5: CI runners are noisy, but the regressions this gate
#   exists to catch (losing the shared wide-window generator table, the
#   aggregate-threshold gating, or the lazy mod-q folding) collapse a
#   ratio by 2x or more, well below this band.
set -eu

fresh=${1:?usage: ci/bench_gate.sh <fresh.json> [committed.json] [tolerance]}
committed=${2:-BENCH_batch.json}
tol=${3:-0.5}

# Pull `"speedup_vs_*": <number>` pairs in document order. Both files
# come from the same serializer, so the sequences align index by index
# (same cases, same batch sizes, same field order).
ratios() {
    grep -o '"speedup_vs_[a-z]*": *[0-9.][0-9.]*' "$1" \
        | sed 's/"//g; s/: */ /'
}

fresh_tmp=$(mktemp)
committed_tmp=$(mktemp)
trap 'rm -f "$fresh_tmp" "$committed_tmp"' EXIT
ratios "$fresh" > "$fresh_tmp"
ratios "$committed" > "$committed_tmp"

if [ ! -s "$committed_tmp" ]; then
    echo "bench_gate: no speedup ratios found in $committed" >&2
    exit 1
fi
if [ "$(wc -l < "$fresh_tmp")" != "$(wc -l < "$committed_tmp")" ]; then
    echo "bench_gate: $fresh and $committed disagree on case/size layout" >&2
    echo "  (regenerate the committed snapshot: perf_snapshot --batch $committed)" >&2
    exit 1
fi

paste "$fresh_tmp" "$committed_tmp" | awk -v tol="$tol" '
    {
        name = $1; fresh = $2; want = $4 * tol
        status = (fresh >= want) ? "ok  " : "FAIL"
        printf "  %s %-16s fresh %6.2fx  committed %6.2fx  floor %6.2fx\n", \
               status, name, fresh, $4, want
        if (fresh < want) bad++
    }
    END {
        if (bad) { printf "bench_gate: %d ratio(s) below tolerance\n", bad; exit 1 }
        print "bench_gate: all ratios within tolerance"
    }'
