//! # chain-chaos
//!
//! A toolkit for evaluating Web PKI certificate chain **deployment
//! compliance** (server side) and **construction capability** (client
//! side) — a full reproduction of *"Chaos in the Chain: Evaluate
//! Deployment and Construction Compliance of Web PKI Certificate Chain"*
//! (IMC 2025) over a synthetic, fully self-contained PKI.
//!
//! The umbrella crate re-exports the workspace layers:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`bignum`] | `ccc-bignum` | arbitrary-precision integers |
//! | [`crypto`] | `ccc-crypto` | SHA-256/SHA-1/HMAC, DRBG, Schnorr signatures |
//! | [`asn1`] | `ccc-asn1` | DER encoder/decoder, OIDs, time |
//! | [`x509`] | `ccc-x509` | certificates, extensions, builder |
//! | [`rootstore`] | `ccc-rootstore` | CA universe, root programs |
//! | [`netsim`] | `ccc-netsim` | AIA, TLS framing, CA pipelines, HTTP servers |
//! | [`obs`] | `ccc-obs` | process-global metrics registry, spans, Prometheus/JSON renderers |
//! | [`core`] | `ccc-core` | compliance analysis, chain builder, clients, differential testing |
//! | [`testgen`] | `ccc-testgen` | capability tests, scenarios, mutations, corpus |
//! | [`lint`] | `ccc-lint` | zlint-style rule registry, SARIF/JSONL diagnostics, baselines |
//! | [`bench`] | `ccc-bench` | fused analysis pipeline, corpus tables, fault-injection sweeps |
//!
//! ## Quick start
//!
//! ```
//! use chain_chaos::core::{BuildContext, IssuanceChecker};
//! use chain_chaos::core::clients::ClientKind;
//! use chain_chaos::rootstore::{CaUniverse, RootPrograms};
//! use chain_chaos::netsim::AiaRepository;
//! use chain_chaos::x509::CertificateBuilder;
//! use chain_chaos::crypto::{Group, KeyPair};
//! use chain_chaos::asn1::Time;
//!
//! // A tiny PKI: root -> intermediate -> leaf.
//! let universe = CaUniverse::default_with_seed(1);
//! let programs = RootPrograms::from_universe(&universe);
//! let aia = AiaRepository::new(universe.aia_publications());
//! let int = &universe.roots[0].intermediates[0];
//! let kp = KeyPair::from_seed(Group::simulation_256(), b"quick");
//! let leaf = CertificateBuilder::leaf_profile("quick.sim")
//!     .issued_by(&kp.public, int.cert.subject().clone(), &int.keypair);
//!
//! // Serve it REVERSED and ask Chrome's profile to build the path.
//! let served = vec![leaf, universe.roots[0].cert.clone(), int.cert.clone()];
//! let checker = IssuanceChecker::new();
//! let ctx = BuildContext {
//!     store: programs.unified(),
//!     aia: Some(&aia),
//!     cache: &[],
//!     now: Time::from_ymd(2024, 7, 1).unwrap(),
//!     checker: &checker,
//! };
//! let outcome = ClientKind::Chrome.engine().process(&served, &ctx);
//! assert!(outcome.accepted(), "Chrome reorders the chain");
//! ```

pub use ccc_asn1 as asn1;
pub use ccc_bench as bench;
pub use ccc_bignum as bignum;
pub use ccc_core as core;
pub use ccc_crypto as crypto;
pub use ccc_lint as lint;
pub use ccc_netsim as netsim;
pub use ccc_obs as obs;
pub use ccc_rootstore as rootstore;
pub use ccc_testgen as testgen;
pub use ccc_x509 as x509;
