//! The chain-chaos command-line tool.
//!
//! ```text
//! chain-chaos demo-pki --out <dir>       generate a demo PKI as PEM files
//! chain-chaos analyze <chain.pem> [--domain D] [--store roots.pem]
//!                                        server-side compliance analysis
//! chain-chaos build <chain.pem> --store roots.pem [--client NAME]
//!                                        [--domain D] [--time YYYY-MM-DD]
//!                                        run one client's chain construction
//! chain-chaos matrix <chain.pem> --store roots.pem [--time YYYY-MM-DD]
//!                                        run all eight client profiles
//! chain-chaos lint <chain.pem> [--domain D] [--store roots.pem]
//!                              [--format text|json|sarif] [--time YYYY-MM-DD]
//!                              [--baseline f] [--write-baseline f]
//!                                        static-analysis pass over the chain
//! chain-chaos chaos [--domains N] [--fault-seed S] [--rates a,b,c]
//!                                        I-4 availability under deterministic
//!                                        network-fault injection
//! chain-chaos metrics [--metrics <path>] dump the metric families (no work)
//! ```
//!
//! `lint` exits non-zero iff Error-severity findings remain after baseline
//! suppression, so it drops into CI pipelines directly.
//!
//! Every subcommand additionally accepts `--metrics <path>`: after the
//! command finishes, the process-global `ccc-obs` registry is dumped to
//! `<path>` — Prometheus text exposition by default, the no-serde JSON
//! object format when the path ends in `.json`, stdout when the path is
//! `-`.

use chain_chaos::asn1::Time;
use chain_chaos::core::clients::ClientKind;
use chain_chaos::core::report::TextTable;
use chain_chaos::core::{
    analyze_order, classify_leaf_placement, BuildContext, CompletenessAnalyzer, IssuanceChecker,
    TopologyGraph,
};
use chain_chaos::crypto::{Group, KeyPair};
use chain_chaos::lint::{render, Baseline, LintEngine, Severity};
use chain_chaos::netsim::AiaRepository;
use chain_chaos::rootstore::RootStore;
use chain_chaos::x509::pem;
use chain_chaos::x509::{Certificate, CertificateBuilder, DistinguishedName};
use std::path::Path;
use std::process::ExitCode;

struct Args {
    positional: Vec<String>,
    options: Vec<(String, String)>,
}

impl Args {
    fn parse(raw: Vec<String>) -> Result<Args, String> {
        let mut positional = Vec::new();
        let mut options = Vec::new();
        let mut iter = raw.into_iter();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                let value = iter
                    .next()
                    .ok_or_else(|| format!("option --{name} needs a value"))?;
                options.push((name.to_string(), value));
            } else {
                positional.push(arg);
            }
        }
        Ok(Args {
            positional,
            options,
        })
    }

    fn opt(&self, name: &str) -> Option<&str> {
        self.options
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

fn load_chain(path: &str) -> Result<Vec<Certificate>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    pem::decode_chain(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn load_store(args: &Args) -> Result<RootStore, String> {
    match args.opt("store") {
        Some(path) => Ok(RootStore::new("cli", load_chain(path)?)),
        None => Ok(RootStore::new("empty", Vec::new())),
    }
}

fn parse_time(args: &Args) -> Result<Time, String> {
    match args.opt("time") {
        None => Ok(Time::from_ymd(2024, 7, 1).expect("valid")),
        Some(spec) => {
            let parts: Vec<&str> = spec.split('-').collect();
            if parts.len() != 3 {
                return Err(format!("--time must be YYYY-MM-DD, got {spec}"));
            }
            let y: i32 = parts[0].parse().map_err(|_| "bad year".to_string())?;
            let m: u8 = parts[1].parse().map_err(|_| "bad month".to_string())?;
            let d: u8 = parts[2].parse().map_err(|_| "bad day".to_string())?;
            Time::from_ymd(y, m, d).ok_or_else(|| format!("invalid date {spec}"))
        }
    }
}

fn cmd_demo_pki(args: &Args) -> Result<(), String> {
    let out = args.opt("out").unwrap_or("demo-pki");
    let dir = Path::new(out);
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {out}: {e}"))?;

    let g = Group::simulation_256();
    let root_kp = KeyPair::from_seed(g, b"cli-demo-root");
    let int_kp = KeyPair::from_seed(g, b"cli-demo-int");
    let leaf_kp = KeyPair::from_seed(g, b"cli-demo-leaf");
    let root_dn = DistinguishedName::cn_o("Demo Root CA", "chain-chaos demo");
    let int_dn = DistinguishedName::cn_o("Demo Issuing CA", "chain-chaos demo");
    let root = CertificateBuilder::ca_profile(root_dn.clone())
        .validity(
            Time::from_ymd(2020, 1, 1).expect("valid"),
            Time::from_ymd(2040, 1, 1).expect("valid"),
        )
        .self_signed(&root_kp);
    let int = CertificateBuilder::ca_profile(int_dn.clone()).issued_by(
        &int_kp.public,
        root_dn,
        &root_kp,
    );
    let leaf = CertificateBuilder::leaf_profile("demo.example").issued_by(
        &leaf_kp.public,
        int_dn,
        &int_kp,
    );

    let write = |name: &str, content: String| -> Result<(), String> {
        let path = dir.join(name);
        std::fs::write(&path, content).map_err(|e| format!("cannot write {name}: {e}"))?;
        println!("wrote {}", path.display());
        Ok(())
    };
    write("root.pem", pem::encode_certificate(&root))?;
    write("intermediate.pem", pem::encode_certificate(&int))?;
    write("leaf.pem", pem::encode_certificate(&leaf))?;
    write(
        "fullchain.pem",
        pem::encode_chain(&[leaf.clone(), int.clone()]),
    )?;
    write(
        "reversed-chain.pem",
        pem::encode_chain(&[leaf.clone(), root.clone(), int.clone()]),
    )?;
    write("lonely-leaf.pem", pem::encode_certificate(&leaf))?;
    println!(
        "\ntry:\n  chain-chaos analyze {0}/reversed-chain.pem --domain demo.example --store {0}/root.pem\n  chain-chaos matrix {0}/reversed-chain.pem --store {0}/root.pem",
        out
    );
    Ok(())
}

fn cmd_analyze(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .get(1)
        .ok_or("usage: chain-chaos analyze <chain.pem> [--domain D] [--store roots.pem]")?;
    let served = load_chain(path)?;
    let store = load_store(args)?;
    let checker = IssuanceChecker::new();
    let aia = AiaRepository::empty();

    println!("{}: {} certificates", path, served.len());
    for (i, cert) in served.iter().enumerate() {
        let v = cert.validity();
        println!(
            "  [{i}] subject={} issuer={}{}",
            cert.subject(),
            cert.issuer(),
            if cert.is_self_issued() { " (self-issued)" } else { "" }
        );
        println!("      validity {} .. {}  fp={}", v.not_before, v.not_after, cert.fingerprint().short());
    }

    let graph = TopologyGraph::build(&served, &checker);
    println!("\ntopology: {}", graph.describe());
    let order = analyze_order(&served, &checker);
    println!(
        "issuance order: duplicates={} irrelevant={} paths={} reversed={} => {}",
        order.duplicates.total(),
        order.irrelevant,
        order.path_count,
        order.reversed_paths,
        if order.is_compliant() { "COMPLIANT" } else { "NON-COMPLIANT" }
    );

    if let Some(domain) = args.opt("domain") {
        let placement = classify_leaf_placement(domain, &served);
        println!("leaf placement for {domain}: {}", placement.label());
    }

    let analyzer = CompletenessAnalyzer::new(&checker, &store, Some(&aia));
    let completeness = analyzer.analyze(&served);
    println!(
        "completeness (against {} trusted roots): {}",
        store.len(),
        completeness.completeness.label()
    );
    Ok(())
}

fn run_engine(
    kind: ClientKind,
    served: &[Certificate],
    store: &RootStore,
    now: Time,
    domain: Option<&str>,
    checker: &IssuanceChecker,
) -> (String, String) {
    let aia = AiaRepository::empty();
    let ctx = BuildContext {
        store,
        aia: Some(&aia),
        cache: &[],
        now,
        checker,
    };
    let outcome = kind.engine().process(served, &ctx);
    let verdict = match &outcome.verdict {
        Ok(()) => match domain {
            Some(d)
                if !chain_chaos::core::leaf::cert_covers_domain(
                    served.first().expect("non-empty"),
                    d,
                ) =>
            {
                "REJECTED: hostname mismatch".to_string()
            }
            _ => "accepted".to_string(),
        },
        Err(e) => format!("REJECTED: {e}"),
    };
    let path = outcome
        .path
        .iter()
        .map(|c| c.subject().common_name().unwrap_or("?").to_string())
        .collect::<Vec<_>>()
        .join(" <- ");
    (verdict, path)
}

fn cmd_build(args: &Args) -> Result<(), String> {
    let path = args.positional.get(1).ok_or(
        "usage: chain-chaos build <chain.pem> --store roots.pem [--client NAME] [--domain D]",
    )?;
    let served = load_chain(path)?;
    if served.is_empty() {
        return Err("empty chain".into());
    }
    let store = load_store(args)?;
    let now = parse_time(args)?;
    let client_name = args.opt("client").unwrap_or("chrome").to_lowercase();
    let kind = ClientKind::ALL
        .iter()
        .find(|k| k.name().to_lowercase().replace(' ', "") == client_name.replace(' ', ""))
        .copied()
        .ok_or_else(|| {
            format!(
                "unknown client {client_name}; options: {}",
                ClientKind::ALL.map(|k| k.name()).join(", ")
            )
        })?;
    let checker = IssuanceChecker::new();
    let (verdict, built) = run_engine(kind, &served, &store, now, args.opt("domain"), &checker);
    println!("{}: {verdict}", kind.name());
    if !built.is_empty() {
        println!("constructed path: {built}");
    }
    Ok(())
}

fn cmd_matrix(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .get(1)
        .ok_or("usage: chain-chaos matrix <chain.pem> --store roots.pem [--domain D]")?;
    // Phase accounting mirrors the corpus pipeline: parsing the served
    // chain is the "generation" phase (done once), the eight client
    // engines are the passes consuming that single observation.
    let gen_start = std::time::Instant::now();
    let served = load_chain(path)?;
    let store = load_store(args)?;
    let generation = gen_start.elapsed();
    let now = parse_time(args)?;
    let mut table = TextTable::new("Client verdicts", &["Client", "Verdict", "Constructed path"]);
    // One shared signature cache across all eight client profiles: each
    // (issuer, subject) pair is verified once, later clients hit the cache.
    let checker = IssuanceChecker::new();
    let analysis_start = std::time::Instant::now();
    for kind in ClientKind::ALL {
        let (verdict, built) = run_engine(kind, &served, &store, now, args.opt("domain"), &checker);
        table.row(&[kind.name().to_string(), verdict, built]);
    }
    let analysis = analysis_start.elapsed();
    println!("{}", table.render());
    println!(
        "{}",
        chain_chaos::core::report::render_phase_split(generation, analysis, 1, ClientKind::ALL.len())
    );
    let stats = checker.snapshot_stats();
    println!("{}", chain_chaos::core::report::render_cache_stats(&stats));
    Ok(())
}

/// Default lint domain: the leaf's first SAN dNSName, else its subject
/// CN, else a placeholder (the domain participates in finding
/// fingerprints, so it must be deterministic for a given input).
fn lint_domain<'a>(args: &'a Args, served: &'a [Certificate]) -> &'a str {
    if let Some(d) = args.opt("domain") {
        return d;
    }
    let Some(leaf) = served.first() else {
        return "unknown.invalid";
    };
    if let Some(name) = leaf.san().and_then(|san| san.dns_names().next()) {
        return name;
    }
    leaf.subject().common_name().unwrap_or("unknown.invalid")
}

fn cmd_lint(args: &Args) -> Result<ExitCode, String> {
    let path = args.positional.get(1).ok_or(
        "usage: chain-chaos lint <chain.pem> [--domain D] [--store roots.pem] \
         [--format text|json|sarif] [--time YYYY-MM-DD] [--baseline f] [--write-baseline f]",
    )?;
    let gen_start = std::time::Instant::now();
    let served = load_chain(path)?;
    let store = load_store(args)?;
    let generation = gen_start.elapsed();
    let now = parse_time(args)?;
    let checker = IssuanceChecker::new();
    let aia = AiaRepository::empty();
    let engine = LintEngine::new(&checker, &store, Some(&aia), now);
    let domain = lint_domain(args, &served).to_string();
    let analysis_start = std::time::Instant::now();
    let findings = engine.lint_chain(&domain, &served);
    let analysis = analysis_start.elapsed();
    // Load-vs-lint wall split on stderr: stdout carries only findings so
    // json/sarif output stays machine-parseable.
    eprintln!(
        "{}",
        chain_chaos::core::report::render_phase_split(
            generation,
            analysis,
            1,
            chain_chaos::lint::registry().len(),
        )
    );

    if let Some(out) = args.opt("write-baseline") {
        let baseline = Baseline::from_findings(findings.iter());
        std::fs::write(out, baseline.to_json())
            .map_err(|e| format!("cannot write {out}: {e}"))?;
        eprintln!("wrote {} suppression(s) to {out}", baseline.len());
        return Ok(ExitCode::SUCCESS);
    }

    let baseline = match args.opt("baseline") {
        Some(bpath) => {
            let text = std::fs::read_to_string(bpath)
                .map_err(|e| format!("cannot read {bpath}: {e}"))?;
            Baseline::parse(&text).map_err(|e| format!("{bpath}: {e}"))?
        }
        None => Baseline::empty(),
    };
    let findings = baseline.filter(findings);

    match args.opt("format").unwrap_or("text") {
        "text" => print!("{}", render::render_text(&findings)),
        "json" => print!("{}", render::render_jsonl(&findings)),
        "sarif" => print!("{}", render::render_sarif(&findings)),
        other => return Err(format!("unknown --format {other} (text|json|sarif)")),
    }
    let has_error = findings.iter().any(|f| f.severity == Severity::Error);
    Ok(if has_error {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

/// `chain-chaos chaos`: sweep the synthetic scan corpus through every
/// (fault scenario × client profile) pair and print the I-4 availability
/// table. Output is byte-identical for any `CCC_THREADS` worker count.
fn cmd_chaos(args: &Args) -> Result<(), String> {
    use chain_chaos::bench::{scan_corpus, FaultPass, FaultScenario, Pipeline};
    use chain_chaos::netsim::FaultPlan;

    let domains: usize = match args.opt("domains") {
        Some(v) => v.parse().map_err(|_| format!("bad --domains '{v}'"))?,
        None => 1_000,
    };
    let fault_seed: Option<u64> = match args.opt("fault-seed") {
        Some(v) => Some(v.parse().map_err(|_| format!("bad --fault-seed '{v}'"))?),
        None => None,
    };
    let rates: Vec<f64> = match args.opt("rates") {
        Some(v) => v
            .split(',')
            .map(|r| {
                r.trim()
                    .parse::<f64>()
                    .map_err(|_| format!("bad rate '{r}'"))
            })
            .collect::<Result<Vec<f64>, String>>()?,
        None => vec![0.0, 0.1, 0.3],
    };
    if rates.is_empty() {
        return Err("--rates needs at least one rate".to_string());
    }

    eprintln!("chaos-sweeping {domains} synthetic domains across {} fault scenario(s)…", rates.len());
    let corpus = scan_corpus(domains);
    let scenarios: Vec<FaultScenario> = rates
        .iter()
        .map(|&rate| {
            let mut sc = FaultScenario::for_corpus(&corpus, rate);
            if let Some(seed) = fault_seed {
                sc.plan = if rate <= 0.0 {
                    FaultPlan::zero(seed)
                } else {
                    FaultPlan::with_fault_rate(seed, rate)
                };
            }
            sc
        })
        .collect();

    let checker = IssuanceChecker::new();
    let (pass, stats) = Pipeline::from_env().run(&corpus, &checker, FaultPass::new(scenarios));
    let summary = pass.into_summary();

    println!("{}", summary.render_table());
    for scenario in &summary.scenarios {
        let recovered: usize = scenario.per_client.values().map(|c| c.recovered).sum();
        let retries: usize = scenario.per_client.values().map(|c| c.aia_retries).sum();
        let exhausted: usize = scenario
            .per_client
            .values()
            .map(|c| c.budget_exhausted)
            .sum();
        println!(
            "{}: {} retr{}, {} chain(s) recovered by retrying clients, {} budget exhaustion(s)",
            scenario.label,
            retries,
            if retries == 1 { "y" } else { "ies" },
            recovered,
            exhausted
        );
    }
    eprintln!("{}", stats.render());
    Ok(())
}

/// Force every metric family this binary can produce to register, so a
/// dump enumerates them (at zero) even when the command exercised only a
/// few. Keeps `--metrics` output shape independent of the workload.
fn touch_all_metrics() {
    chain_chaos::core::builder::touch_build_metrics();
    chain_chaos::netsim::touch_fetch_metrics();
    chain_chaos::bench::touch_pipeline_metrics();
    // Reading the route stats registers the verify-route family.
    let _ = chain_chaos::crypto::verify_route_stats();
}

/// `chain-chaos metrics`: register every family and dump the (all-zero)
/// exposition — a schema preview and a smoke test for scrape tooling.
fn cmd_metrics(args: &Args) -> Result<(), String> {
    let path = args.opt("metrics").unwrap_or("-");
    dump_metrics(path)
}

/// Render the process-global registry to `path` (Prometheus text, or the
/// no-serde JSON object format when `path` ends in `.json`; `-` writes
/// Prometheus to stdout, `-.json`/`.json` alone are not special-cased).
fn dump_metrics(path: &str) -> Result<(), String> {
    touch_all_metrics();
    let snapshot = chain_chaos::obs::MetricsRegistry::global().snapshot();
    let rendered = if path.ends_with(".json") {
        chain_chaos::obs::render_json(&snapshot)
    } else {
        chain_chaos::obs::render_prometheus(&snapshot)
    };
    if path == "-" {
        print!("{rendered}");
        Ok(())
    } else {
        std::fs::write(path, &rendered).map_err(|e| format!("cannot write {path}: {e}"))
    }
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match Args::parse(raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let command = args.positional.first().map(String::as_str).unwrap_or("");
    let _span = match command {
        "demo-pki" => Some(chain_chaos::obs::span!("cmd.demo-pki")),
        "analyze" => Some(chain_chaos::obs::span!("cmd.analyze")),
        "build" => Some(chain_chaos::obs::span!("cmd.build")),
        "matrix" => Some(chain_chaos::obs::span!("cmd.matrix")),
        "lint" => Some(chain_chaos::obs::span!("cmd.lint")),
        "chaos" => Some(chain_chaos::obs::span!("cmd.chaos")),
        _ => None,
    };
    let result = match command {
        "demo-pki" => cmd_demo_pki(&args).map(|()| ExitCode::SUCCESS),
        "analyze" => cmd_analyze(&args).map(|()| ExitCode::SUCCESS),
        "build" => cmd_build(&args).map(|()| ExitCode::SUCCESS),
        "matrix" => cmd_matrix(&args).map(|()| ExitCode::SUCCESS),
        "lint" => cmd_lint(&args),
        "chaos" => cmd_chaos(&args).map(|()| ExitCode::SUCCESS),
        "metrics" => cmd_metrics(&args).map(|()| ExitCode::SUCCESS),
        _ => {
            eprintln!(
                "chain-chaos — Web PKI certificate chain compliance toolkit\n\n\
                 commands:\n\
                 \x20 demo-pki --out <dir>\n\
                 \x20 analyze <chain.pem> [--domain D] [--store roots.pem]\n\
                 \x20 build   <chain.pem> --store roots.pem [--client NAME] [--domain D] [--time YYYY-MM-DD]\n\
                 \x20 matrix  <chain.pem> --store roots.pem [--domain D] [--time YYYY-MM-DD]\n\
                 \x20 lint    <chain.pem> [--domain D] [--store roots.pem] [--format text|json|sarif]\n\
                 \x20         [--time YYYY-MM-DD] [--baseline f] [--write-baseline f]\n\
                 \x20 chaos   [--domains N] [--fault-seed S] [--rates a,b,c]\n\
                 \x20 metrics [--metrics <path>]\n\n\
                 every command accepts --metrics <path> to dump the ccc-obs\n\
                 registry afterwards (Prometheus text; *.json for JSON; - for stdout)"
            );
            return ExitCode::FAILURE;
        }
    };
    // Close the command span before dumping so its duration is recorded.
    drop(_span);
    if let Some(path) = args.opt("metrics") {
        if command != "metrics" {
            if let Err(e) = dump_metrics(path) {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
