//! Configuration, deterministic RNG, and test-case error types.

use std::borrow::Cow;

/// Per-`proptest!` block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of passing cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` passing cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is regenerated.
    Reject(Cow<'static, str>),
    /// An assertion failed.
    Fail(String),
}

/// Result type every generated case body evaluates to.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic splitmix64-based RNG, seeded from the test's name so each
/// property gets a stable but distinct stream across runs and platforms.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary label (FNV-1a over the bytes).
    pub fn deterministic(label: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h | 1 }
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift reduction; bias is negligible for test generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}
