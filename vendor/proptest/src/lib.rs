//! Offline drop-in subset of the `proptest` property-testing API.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the small slice of proptest it actually uses: the [`proptest!`] macro,
//! integer-range and `any::<T>()` strategies, `collection::vec`, and the
//! `prop_assert*` / `prop_assume!` macros. Generation is deterministic per
//! test (seeded from the test name), failures report the generated inputs.
//! Shrinking is not implemented — a failing case prints its inputs instead.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The subset of the proptest prelude the workspace uses.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

pub use arbitrary::any;

/// Define property tests.
///
/// Supports the standard form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u64..100, v in proptest::collection::vec(any::<u8>(), 0..16)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr); $(#[test] fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let mut passed: u32 = 0;
                let mut rejected: u32 = 0;
                while passed < config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    let rendered_inputs = {
                        let mut s = ::std::string::String::new();
                        $(
                            s.push_str(stringify!($arg));
                            s.push_str(" = ");
                            s.push_str(&::std::format!("{:?}", &$arg));
                            s.push_str("; ");
                        )+
                        s
                    };
                    let outcome: $crate::test_runner::TestCaseResult = (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => passed += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {
                            rejected += 1;
                            if rejected > config.cases.saturating_mul(16).max(256) {
                                panic!(
                                    "proptest {}: too many prop_assume! rejections ({rejected})",
                                    stringify!($name)
                                );
                            }
                        }
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => {
                            panic!(
                                "proptest {} failed at case {}: {}\n  inputs: {}",
                                stringify!($name),
                                passed,
                                msg,
                                rendered_inputs
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Reject the current case (it is regenerated, not counted as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::borrow::Cow::Borrowed(stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in -5i64..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_range(v in crate::collection::vec(any::<u8>(), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6, "len {}", v.len());
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u8..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::deterministic("seed");
        let mut b = crate::test_runner::TestRng::deterministic("seed");
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
