//! Value-generation strategies (no shrinking).

use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::ops::Range;

/// A source of generated values.
pub trait Strategy {
    /// The generated value type.
    type Value: Clone + Debug;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! unsigned_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let span64 = u64::try_from(span).expect("range span fits u64");
                (self.start as i128 + rng.below(span64) as i128) as $t
            }
        }
    )*};
}

unsigned_range_strategy!(u8, u16, u32, u64, usize);
signed_range_strategy!(i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_span_ranges() {
        let mut rng = TestRng::deterministic("strategy-test");
        for _ in 0..256 {
            let v = (0u8..255).generate(&mut rng);
            assert!(v < 255);
            let s = (-2_000_000_000i64..4_000_000_000i64).generate(&mut rng);
            assert!((-2_000_000_000..4_000_000_000).contains(&s));
        }
    }
}
