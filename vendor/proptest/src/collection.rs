//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Strategy for `Vec<S::Value>` with a length drawn from a range.
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.start >= self.size.end {
            self.size.start
        } else {
            self.size.generate(rng)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generate vectors whose elements come from `element` and whose length is
/// drawn uniformly from `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}
