//! Offline drop-in subset of the `criterion` benchmarking API.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the slice of criterion its benches use: `Criterion`, benchmark groups,
//! `bench_function` / `bench_with_input`, `Throughput`, `BenchmarkId`, and
//! the `criterion_group!` / `criterion_main!` macros. Timing is a simple
//! calibrated-sample loop reporting min/median/max per iteration — enough
//! for the repo's relative comparisons (e.g. sharded vs. single-mutex
//! cache), without criterion's statistical machinery.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Two-part benchmark identifier (`function_id/parameter`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("case", "client")` → `case/client`.
    pub fn new(function_id: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_id}/{parameter}"),
        }
    }

    /// Single-part id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    sample_size: usize,
    /// `cargo test` smoke mode: run the closure once, skip calibration.
    test_mode: bool,
    /// Nanoseconds per iteration, one entry per sample.
    samples_ns: Vec<f64>,
}

impl Bencher {
    fn new(sample_size: usize, test_mode: bool) -> Bencher {
        Bencher {
            sample_size,
            test_mode,
            samples_ns: Vec::new(),
        }
    }

    /// Measure `f`, calibrating the per-sample iteration count so each
    /// sample runs for roughly 5 ms (bounded to keep total time sane).
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        if self.test_mode {
            let start = Instant::now();
            black_box(f());
            self.samples_ns.push(start.elapsed().as_nanos() as f64);
            return;
        }
        // Calibrate: double iterations until a sample takes >= 5 ms.
        let target = Duration::from_millis(5);
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= target || iters >= 1 << 22 {
                break;
            }
            iters = iters.saturating_mul(2);
        }
        self.samples_ns.clear();
        for _ in 0..self.sample_size.max(1) {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            self.samples_ns
                .push(elapsed.as_nanos() as f64 / iters as f64);
        }
    }

    fn summary(&self) -> Option<(f64, f64, f64)> {
        if self.samples_ns.is_empty() {
            return None;
        }
        let mut sorted = self.samples_ns.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median = sorted[sorted.len() / 2];
        Some((sorted[0], median, *sorted.last().expect("non-empty")))
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    test_mode: bool,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate per-iteration throughput (printed next to timings).
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Override the number of timing samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        if !self.criterion.matches_filter(&full) {
            return self;
        }
        let mut bencher = Bencher::new(self.sample_size, self.test_mode);
        f(&mut bencher);
        self.report(&full, &bencher);
        self
    }

    /// Run one benchmark parameterized by an input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        if !self.criterion.matches_filter(&full) {
            return self;
        }
        let mut bencher = Bencher::new(self.sample_size, self.test_mode);
        f(&mut bencher, input);
        self.report(&full, &bencher);
        self
    }

    fn report(&self, full: &str, bencher: &Bencher) {
        let Some((min, median, max)) = bencher.summary() else {
            println!("{full:<50} (no samples recorded)");
            return;
        };
        let mut line = format!(
            "{full:<50} time: [{} {} {}]",
            human_time(min),
            human_time(median),
            human_time(max)
        );
        match self.throughput {
            Some(Throughput::Bytes(bytes)) if median > 0.0 => {
                let mbps = bytes as f64 / median * 1_000.0; // ns → MB/s
                line.push_str(&format!("  thrpt: {mbps:.1} MB/s"));
            }
            Some(Throughput::Elements(elems)) if median > 0.0 => {
                let eps = elems as f64 / median * 1_000_000_000.0;
                line.push_str(&format!("  thrpt: {eps:.0} elem/s"));
            }
            _ => {}
        }
        println!("{line}");
    }

    /// Finish the group (printing is incremental; this is a no-op hook).
    pub fn finish(&mut self) {}
}

/// Benchmark driver.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 10,
            test_mode: false,
            filter: None,
        }
    }
}

impl Criterion {
    /// Set the default number of timing samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Apply `cargo bench` command-line arguments (`--bench` is ignored;
    /// the first free argument becomes a substring filter).
    pub fn configure_from_args(mut self) -> Criterion {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--bench" => {}
                "--test" => self.test_mode = true,
                // Flags with a value we ignore.
                "--sample-size" => {
                    if let Some(v) = args.next() {
                        if let Ok(n) = v.parse::<usize>() {
                            self.sample_size = n.max(1);
                        }
                    }
                }
                s if s.starts_with('-') => {}
                s => {
                    if self.filter.is_none() {
                        self.filter = Some(s.to_string());
                    }
                }
            }
        }
        self
    }

    fn matches_filter(&self, full_name: &str) -> bool {
        self.filter
            .as_deref()
            .map(|f| full_name.contains(f))
            .unwrap_or(true)
    }

    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            test_mode: self.test_mode,
            throughput: None,
            criterion: self,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = id.to_string();
        self.benchmark_group(name.clone())
            .bench_function("base", f)
            .finish();
        self
    }
}

/// Declare a group of benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config.configure_from_args();
            $(
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generate `fn main` running one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut b = Bencher::new(3, false);
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_add(1);
            acc
        });
        assert_eq!(b.samples_ns.len(), 3);
        let (min, median, max) = b.summary().unwrap();
        assert!(min <= median && median <= max);
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("case", "client").to_string(), "case/client");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }

    #[test]
    fn human_time_units() {
        assert!(human_time(12.0).ends_with("ns"));
        assert!(human_time(12_000.0).ends_with("µs"));
        assert!(human_time(12_000_000.0).ends_with("ms"));
    }
}
